//! Step-time attribution: every nanosecond of every rank's window goes to
//! exactly one category, so the per-category totals sum to the wall time
//! **exactly** — the profiler's core invariant.
//!
//! Attribution works on self time: a span's interval minus its children's
//! intervals belongs to the span itself, resolved to a category from the
//! span's name and its ancestry (a GEMM kernel inside a recompute region
//! is recompute; a collective inside the overlap driver is overlapped
//! comm). Time covered by no span at all is pipeline bubble / idle.

use crate::timeline::{Timeline, Track};
use serde::{Deserialize, Serialize};

/// The closed category set of the attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// GEMM and other kernel compute (incl. the overlap driver's compute
    /// and join time).
    Gemm,
    /// Communication no dependent compute covered: blocking collectives
    /// outside the overlap driver.
    ExposedComm,
    /// Collective time issued under the dependency-aware overlap driver
    /// (hidden or hideable behind row-band compute).
    OverlappedComm,
    /// Activation recomputation serialized into the backward pass (the
    /// paper's trade currency): inline replays and their child kernels,
    /// plus the join wait on a prefetched replay the backward failed to
    /// hide.
    ExposedRecompute,
    /// Rank-thread time inside the recompute-prefetch driver's window that
    /// is not the covering backward work itself: issue/join bookkeeping for
    /// a replay running hidden on a helper thread. (The hidden replay costs
    /// no rank wall time, exactly like an off-stream GPU kernel; the
    /// ledger's `recompute_us` carries its true duration.)
    OverlappedRecompute,
    /// Optimizer / parameter update.
    Optimizer,
    /// Time covered by no span: pipeline bubble or rank idle.
    Bubble,
    /// Instrumented time that fits no other category (layer glue,
    /// dropout masks, loss math).
    Other,
}

/// Every category, in report order.
pub const CATEGORIES: [Category; 8] = [
    Category::Gemm,
    Category::ExposedComm,
    Category::OverlappedComm,
    Category::ExposedRecompute,
    Category::OverlappedRecompute,
    Category::Optimizer,
    Category::Bubble,
    Category::Other,
];

impl Category {
    /// Stable snake_case label used in JSON and narratives.
    pub fn label(self) -> &'static str {
        match self {
            Category::Gemm => "gemm",
            Category::ExposedComm => "exposed_comm",
            Category::OverlappedComm => "overlapped_comm",
            Category::ExposedRecompute => "exposed_recompute",
            Category::OverlappedRecompute => "overlapped_recompute",
            Category::Optimizer => "optimizer",
            Category::Bubble => "bubble",
            Category::Other => "other",
        }
    }
}

/// Nanoseconds per category; the serializable attribution result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryNs {
    /// Kernel/GEMM compute.
    pub gemm: u64,
    /// Exposed communication.
    pub exposed_comm: u64,
    /// Overlapped communication.
    pub overlapped_comm: u64,
    /// Exposed (inline or join-wait) recomputation.
    pub exposed_recompute: u64,
    /// Recompute-prefetch driver bookkeeping (hidden replay).
    pub overlapped_recompute: u64,
    /// Optimizer.
    pub optimizer: u64,
    /// Bubble / idle.
    pub bubble: u64,
    /// Everything else.
    pub other: u64,
}

impl CategoryNs {
    /// Adds `ns` to one category.
    pub fn add(&mut self, cat: Category, ns: u64) {
        *self.slot(cat) += ns;
    }

    /// Reads one category.
    pub fn get(&self, cat: Category) -> u64 {
        match cat {
            Category::Gemm => self.gemm,
            Category::ExposedComm => self.exposed_comm,
            Category::OverlappedComm => self.overlapped_comm,
            Category::ExposedRecompute => self.exposed_recompute,
            Category::OverlappedRecompute => self.overlapped_recompute,
            Category::Optimizer => self.optimizer,
            Category::Bubble => self.bubble,
            Category::Other => self.other,
        }
    }

    fn slot(&mut self, cat: Category) -> &mut u64 {
        match cat {
            Category::Gemm => &mut self.gemm,
            Category::ExposedComm => &mut self.exposed_comm,
            Category::OverlappedComm => &mut self.overlapped_comm,
            Category::ExposedRecompute => &mut self.exposed_recompute,
            Category::OverlappedRecompute => &mut self.overlapped_recompute,
            Category::Optimizer => &mut self.optimizer,
            Category::Bubble => &mut self.bubble,
            Category::Other => &mut self.other,
        }
    }

    /// `(label, ns)` for every category, in report order.
    pub fn entries(&self) -> [(&'static str, u64); 8] {
        CATEGORIES.map(|c| (c.label(), self.get(c)))
    }

    /// Sum over all categories — must equal the wall time it was
    /// attributed over.
    pub fn total(&self) -> u64 {
        CATEGORIES.iter().map(|&c| self.get(c)).sum()
    }

    /// Element-wise accumulation.
    pub fn accumulate(&mut self, other: &CategoryNs) {
        for c in CATEGORIES {
            self.add(c, other.get(c));
        }
    }
}

/// Span names that are blocking collective rendezvous.
pub(crate) fn is_collective(name: &str) -> bool {
    matches!(
        name,
        "all_reduce"
            | "all_gather"
            | "reduce_scatter"
            | "broadcast"
            | "barrier"
            | "send_recv"
            | "recv"
    )
}

/// Collectives that are *global* rounds every rank participates in (the
/// rendezvous edges of the cross-rank dependency graph). Point-to-point
/// sends are excluded: they pair two ranks, not the group.
pub(crate) fn is_global_rendezvous(name: &str) -> bool {
    matches!(name, "all_reduce" | "all_gather" | "reduce_scatter" | "broadcast" | "barrier")
}

#[derive(Debug, Clone, Copy, Default)]
struct Ctx {
    in_overlap: bool,
    in_recompute: bool,
    in_optimizer: bool,
}

/// Category of a span's *self* time given its name and ancestry.
fn resolve(name: &str, ctx: Ctx) -> Category {
    if is_collective(name) {
        return if ctx.in_overlap { Category::OverlappedComm } else { Category::ExposedComm };
    }
    if name == "comm_exposed" {
        // The ledger wrapper: its self time is rendezvous bookkeeping
        // around the collective it times.
        return Category::ExposedComm;
    }
    if name == "gemm_overlapped" {
        // The overlap driver's self time is band compute + join; the
        // fetches it issues are separate child collective spans.
        return Category::Gemm;
    }
    if name == "recompute_overlapped" {
        // The recompute-prefetch driver's self time: issue/join
        // bookkeeping around a replay hidden on a helper thread. Its
        // children are the *covering backward work*, not the replay, so
        // they resolve by their own names (no in_recompute inheritance).
        return Category::OverlappedRecompute;
    }
    if name == "recompute_wait" {
        // Join wait the covering work failed to hide: exposed replay time.
        return Category::ExposedRecompute;
    }
    if name.starts_with("kernel_") || name == "fwd_chunk" || name == "bwd_chunk" {
        // Kernels executed for recomputation (or inside the optimizer)
        // count as that phase: the paper's accounting asks "what did this
        // time buy", not "which unit executed".
        if ctx.in_recompute {
            return Category::ExposedRecompute;
        }
        if ctx.in_optimizer {
            return Category::Optimizer;
        }
        return Category::Gemm;
    }
    if name.starts_with("recompute") {
        return Category::ExposedRecompute;
    }
    if name == "optimizer" {
        return Category::Optimizer;
    }
    if matches!(name, "epoch_reform" | "reshard" | "replay_segment") {
        // Elastic-recovery phases (mt-elastic): MTTR wall time bought
        // neither math nor bytes, so it lands in `other` — the 8-category
        // sum still tiles the wall exactly, and a recovery-heavy window is
        // visibly recovery-heavy instead of masquerading as compute.
        return Category::Other;
    }
    if ctx.in_recompute {
        return Category::ExposedRecompute;
    }
    if ctx.in_optimizer {
        return Category::Optimizer;
    }
    Category::Other
}

/// A track's window tiled into disjoint, contiguous, categorized
/// segments: `Σ segment lengths == window length` exactly, by
/// construction.
#[derive(Debug, Clone)]
pub struct TrackSegments {
    /// Track id.
    pub track: u32,
    /// `(start_ns, end_ns, category)`, sorted, disjoint, covering the
    /// window with no gaps.
    pub segments: Vec<(u64, u64, Category)>,
}

impl TrackSegments {
    /// Per-category totals over the whole window.
    pub fn totals(&self) -> CategoryNs {
        let mut out = CategoryNs::default();
        for &(a, b, c) in &self.segments {
            out.add(c, b - a);
        }
        out
    }

    /// Per-category totals clipped to `[a, b]` (used to attribute
    /// critical-path slices).
    pub fn slice(&self, a: u64, b: u64) -> CategoryNs {
        let mut out = CategoryNs::default();
        for &(s, e, c) in &self.segments {
            let lo = s.max(a);
            let hi = e.min(b);
            if hi > lo {
                out.add(c, hi - lo);
            }
        }
        out
    }
}

/// Tiles one track's view of the global window into categorized segments.
pub fn segment_track(track: &Track, window: (u64, u64)) -> TrackSegments {
    let mut segments = Vec::new();
    let mut cursor = window.0;
    for &root in &track.roots {
        let start = track.spans[root].start_ns.max(cursor);
        if start > cursor {
            // Time covered by no span at all: bubble / idle.
            segments.push((cursor, start, Category::Bubble));
        }
        cursor = emit(track, root, Ctx::default(), cursor, &mut segments);
    }
    if window.1 > cursor {
        segments.push((cursor, window.1, Category::Bubble));
    }
    TrackSegments { track: track.track, segments }
}

/// Emits the categorized segments of one span subtree, starting no
/// earlier than `cursor`; returns the new cursor.
fn emit(
    track: &Track,
    idx: usize,
    ctx: Ctx,
    cursor: u64,
    out: &mut Vec<(u64, u64, Category)>,
) -> u64 {
    let span = &track.spans[idx];
    let own = resolve(&span.name, ctx);
    let child_ctx = Ctx {
        in_overlap: ctx.in_overlap || span.name == "gemm_overlapped",
        in_recompute: ctx.in_recompute
            || (span.name.starts_with("recompute") && span.name != "recompute_overlapped"),
        in_optimizer: ctx.in_optimizer || span.name == "optimizer",
    };
    let mut cursor = cursor.max(span.start_ns);
    for &child in &span.children {
        let child_start = track.spans[child].start_ns.max(cursor);
        if child_start > cursor {
            // Gap between children: the span's own (self) time.
            out.push((cursor, child_start, own));
        }
        cursor = emit(track, child, child_ctx, cursor, out);
    }
    if span.end_ns > cursor {
        out.push((cursor, span.end_ns, own));
        cursor = span.end_ns;
    }
    cursor
}

/// Attribution of every track of a timeline over the shared global
/// window.
pub fn segment_timeline(tl: &Timeline) -> Vec<TrackSegments> {
    tl.tracks.values().map(|t| segment_track(t, tl.window)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Timeline;
    use mt_trace::Tracer;

    /// Hand-built timeline with exactly known category splits.
    #[test]
    fn attribution_is_exact_on_a_synthetic_timeline() {
        let t = Tracer::enabled();
        // Track 0, window [0, 100us]:
        //   step [0, 100]
        //     kernel_gemm     [10, 30]  -> gemm      20us
        //     comm_exposed    [30, 50]
        //       all_reduce    [32, 48]  -> exposed   16us (+4us wrapper)
        //     recompute_layer [50, 70]
        //       kernel_gemm   [52, 68]  -> recompute 18us (kernel inherits)
        //     optimizer       [80, 90]  -> optimizer 10us
        // self time of step: [0,10]+[70,80]+[90,100] = 30us -> other
        t.complete_at("all_reduce", 0, 32.0, 16.0, Vec::new());
        t.complete_at("comm_exposed", 0, 30.0, 20.0, Vec::new());
        t.complete_at("kernel_gemm", 0, 10.0, 20.0, Vec::new());
        t.complete_at("kernel_gemm", 0, 52.0, 16.0, Vec::new());
        t.complete_at("recompute_layer", 0, 50.0, 20.0, Vec::new());
        t.complete_at("optimizer", 0, 80.0, 10.0, Vec::new());
        t.complete_at("step", 0, 0.0, 100.0, Vec::new());
        let tl = Timeline::build(&t.events()).unwrap();
        let segs = segment_track(&tl.tracks[&0], tl.window);
        let totals = segs.totals();
        assert_eq!(totals.gemm, 20_000);
        assert_eq!(totals.exposed_comm, 20_000, "collective + wrapper self time");
        assert_eq!(totals.exposed_recompute, 20_000, "kernel inside recompute inherits");
        assert_eq!(totals.optimizer, 10_000);
        assert_eq!(totals.other, 30_000);
        assert_eq!(totals.bubble, 0);
        assert_eq!(totals.overlapped_comm, 0);
        assert_eq!(totals.total(), tl.wall_ns(), "categories tile the window exactly");
    }

    /// The recompute-prefetch driver: its children are covering backward
    /// work (categorized by their own names), its self time is driver
    /// bookkeeping, and the join wait is exposed recompute.
    #[test]
    fn recompute_prefetch_driver_splits_exposed_from_overlapped() {
        let t = Tracer::enabled();
        // Track 0, window [0, 100us]:
        //   step [0, 100]
        //     recompute_overlapped [10, 60]
        //       kernel_gemm        [12, 40] -> gemm (covering backward) 28us
        //       all_reduce         [40, 48] -> exposed_comm             8us
        //       recompute_wait     [50, 58] -> exposed_recompute        8us
        //       (self: [10,12]+[48,50]+[58,60] = 6us -> overlapped_recompute)
        //     recompute_attention  [70, 90]
        //       kernel_gemm        [72, 88] -> exposed_recompute (inherits)
        // self of step: [0,10]+[60,70]+[90,100] = 30us -> other
        t.complete_at("kernel_gemm", 0, 12.0, 28.0, Vec::new());
        t.complete_at("all_reduce", 0, 40.0, 8.0, Vec::new());
        t.complete_at("recompute_wait", 0, 50.0, 8.0, Vec::new());
        t.complete_at("recompute_overlapped", 0, 10.0, 50.0, Vec::new());
        t.complete_at("kernel_gemm", 0, 72.0, 16.0, Vec::new());
        t.complete_at("recompute_attention", 0, 70.0, 20.0, Vec::new());
        t.complete_at("step", 0, 0.0, 100.0, Vec::new());
        let tl = Timeline::build(&t.events()).unwrap();
        let totals = segment_track(&tl.tracks[&0], tl.window).totals();
        assert_eq!(totals.gemm, 28_000, "covering backward under the driver stays gemm");
        assert_eq!(totals.exposed_comm, 8_000, "collectives under the driver stay comm");
        assert_eq!(totals.exposed_recompute, 8_000 + 16_000 + 4_000, "wait + inline replay");
        assert_eq!(totals.overlapped_recompute, 6_000, "driver self time only");
        assert_eq!(totals.other, 30_000);
        assert_eq!(totals.total(), tl.wall_ns(), "categories tile the window exactly");
    }

    #[test]
    fn uncovered_time_and_overlap_fetches_categorize() {
        let t = Tracer::enabled();
        // Track 3 starts late (10us of bubble), then an overlap driver
        // whose child fetch is overlapped comm.
        t.complete_at("all_gather", 3, 15.0, 10.0, Vec::new());
        t.complete_at("gemm_overlapped", 3, 10.0, 40.0, Vec::new());
        // A second, earlier-starting track pins the window start at 0.
        t.complete_at("step", 0, 0.0, 50.0, Vec::new());
        let tl = Timeline::build(&t.events()).unwrap();
        assert_eq!(tl.window, (0, 50_000));
        let segs = segment_track(&tl.tracks[&3], tl.window);
        let totals = segs.totals();
        assert_eq!(totals.bubble, 10_000, "pre-first-span time is idle");
        assert_eq!(totals.overlapped_comm, 10_000, "fetch under the driver");
        assert_eq!(totals.gemm, 30_000, "driver self time is compute+join");
        assert_eq!(totals.total(), tl.wall_ns());
        // Slices are exact too.
        let head = segs.slice(0, 20_000);
        assert_eq!(head.bubble, 10_000);
        assert_eq!(head.gemm, 5_000);
        assert_eq!(head.overlapped_comm, 5_000);
        assert_eq!(head.total(), 20_000);
    }
}
