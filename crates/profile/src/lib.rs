//! `mt-profile`: the analysis layer over `mt-trace` — answers *where the
//! step time actually went*.
//!
//! The paper's argument is an accounting exercise: activation bytes and
//! recompute/communication time per layer (Korthikanti et al., MLSys
//! 2023, Tables 2/4). This crate closes the measurement side of that
//! loop. From a raw [`mt_trace::TraceEvent`] stream it:
//!
//! 1. **Reconstructs per-rank timelines** ([`Timeline`]): spans quantized
//!    to integer nanoseconds and linked into a containment forest per
//!    track.
//! 2. **Links the cross-rank dependency graph**: parent/child nesting
//!    plus collective-rendezvous edges, matched per SPMD issue order and
//!    validated against each span's `CallTag`-derived signature
//!    ([`collective_rounds`]).
//! 3. **Attributes every nanosecond** of each rank's window to a closed
//!    category set — {gemm, exposed_comm, overlapped_comm,
//!    exposed_recompute, overlapped_recompute, optimizer, bubble, other}
//!    — with the invariant that categories sum to wall time **exactly**
//!    ([`segment_track`], [`CategoryNs`]).
//! 4. **Extracts the cross-rank critical path** ([`critical_path`]):
//!    walk backward from the latest span end, hopping to the last arriver
//!    of each gating rendezvous; segments telescope, so the path length
//!    equals the step wall time exactly.
//! 5. **Cross-checks** the attribution against independent ledgers: the
//!    wrapped-comm and wrapped-recompute close-args must equal
//!    `mt-model`'s `StepTiming` integers bit for bit, and (via
//!    `e2e_step_bench --profile`) the `exposed_ms` /
//!    `exposed_recompute_ms` in `reports/BENCH_e2e.json`; a divergence
//!    report compares measured phase times against the `mt-perf` α–β /
//!    GEMM-efficiency model.
//!
//! [`analyze`] bundles all of it into a serializable [`ProfileReport`];
//! [`verify`] re-checks every exact invariant on a deserialized report
//! (the CI smoke step); [`diff_reports`]/[`narrative`] explain what
//! changed between two runs, category by category — wired into
//! `bench_gate`'s failure path so CI regressions arrive with an
//! explanation instead of a bare ratio.

mod attrib;
mod critical;
mod diff;
mod report;
mod timeline;

pub use attrib::{
    segment_timeline, segment_track, Category, CategoryNs, TrackSegments, CATEGORIES,
};
pub use critical::{collective_rounds, critical_path, CritSegment, CriticalPath, Round};
pub use diff::{
    diff_documents, diff_reports, load_profiles, narrative, CategoryDelta, ProfileDiff,
    ProfileDocument,
};
pub use report::{
    analyze, render_ascii, verify, AnalyzeOptions, CritSummary, Divergence, ExpectedTiming,
    ProfileReport, RankProfile, TreeLine, SCHEMA_VERSION,
};
pub use timeline::{Span, Timeline, Track};
