//! Cross-rank critical path.
//!
//! The dependency graph has two edge kinds: parent/child nesting inside a
//! track (already explicit in the [`Timeline`] forest) and
//! collective-rendezvous edges *across* tracks. The latter come from the
//! SPMD protocol itself: every rank issues the same sequence of global
//! collectives (the property `CallTag` mismatch detection enforces at
//! runtime), so the i-th global collective span on each track is the same
//! logical round, and a round completes only after its **last arriver**
//! enters it.
//!
//! The path is extracted by walking backward from the latest span end:
//! time on the current rank runs back to the rendezvous that gated it,
//! then jumps to whichever rank arrived last at that round, and so on
//! until the window start. Segment boundaries telescope, so the path's
//! total length equals the profiled step wall time **exactly**.

use crate::attrib::is_global_rendezvous;
use crate::timeline::Timeline;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One matched cross-rank rendezvous round.
#[derive(Debug, Clone)]
pub struct Round {
    /// Stable key: `seq:op:payload_bytes[:chunk/chunks]` — the profiler's
    /// rendering of the runtime `CallTag`.
    pub key: String,
    /// Track → index of that track's span for this round.
    pub spans: BTreeMap<u32, usize>,
}

/// One critical-path slice: time attributed to `track` over
/// `[start_ns, end_ns)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CritSegment {
    /// The rank lane this slice runs on.
    pub track: u32,
    /// Slice start (tracer nanoseconds).
    pub start_ns: u64,
    /// Slice end (tracer nanoseconds).
    pub end_ns: u64,
}

/// The extracted path: contiguous segments from window start to window
/// end, plus the number of cross-rank handoffs taken.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Forward-ordered, contiguous segments tiling the window.
    pub segments: Vec<CritSegment>,
    /// Cross-rank rendezvous handoffs along the path.
    pub rendezvous: u64,
}

/// Matches each track's global collective spans into rounds by SPMD issue
/// order, validating that every track agrees on the round's signature.
pub fn collective_rounds(tl: &Timeline) -> Result<Vec<Round>, String> {
    let per_track: BTreeMap<u32, Vec<usize>> = tl
        .tracks
        .iter()
        .map(|(&id, track)| {
            let mut idxs: Vec<usize> = (0..track.spans.len())
                .filter(|&i| is_global_rendezvous(&track.spans[i].name))
                .collect();
            idxs.sort_by_key(|&i| (track.spans[i].start_ns, track.spans[i].end_ns));
            (id, idxs)
        })
        .collect();
    let counts: Vec<usize> = per_track.values().map(Vec::len).collect();
    let Some(&n) = counts.first() else { return Ok(Vec::new()) };
    if counts.iter().any(|&c| c != n) {
        return Err(format!(
            "SPMD violation in trace: per-track global-collective counts differ ({counts:?})"
        ));
    }
    let mut rounds = Vec::with_capacity(n);
    for i in 0..n {
        let mut signature: Option<String> = None;
        let mut spans = BTreeMap::new();
        for (&id, idxs) in &per_track {
            let span = &tl.tracks[&id].spans[idxs[i]];
            let mut sig = format!("{}:{}", span.name, span.arg_u64("payload_bytes").unwrap_or(0));
            if let (Some(j), Some(c)) = (span.arg_u64("chunk"), span.arg_u64("chunks")) {
                sig.push_str(&format!(":{j}/{c}"));
            }
            match &signature {
                None => signature = Some(sig),
                Some(expected) if *expected != sig => {
                    return Err(format!(
                        "round {i}: track {id} issued {sig} where others issued {expected} \
                         (trace is not SPMD-consistent)"
                    ));
                }
                Some(_) => {}
            }
            spans.insert(id, idxs[i]);
        }
        rounds.push(Round { key: format!("{i}:{}", signature.unwrap_or_default()), spans });
    }
    Ok(rounds)
}

/// Extracts the cross-rank critical path over the timeline's window.
pub fn critical_path(tl: &Timeline, rounds: &[Round]) -> CriticalPath {
    // Per track: (span start, round index), ascending — the rendezvous
    // this track passed through, in time order.
    let mut gates: BTreeMap<u32, Vec<(u64, usize)>> = BTreeMap::new();
    for (ri, round) in rounds.iter().enumerate() {
        for (&id, &span_idx) in &round.spans {
            gates.entry(id).or_default().push((tl.tracks[&id].spans[span_idx].start_ns, ri));
        }
    }
    for list in gates.values_mut() {
        list.sort_unstable();
    }

    // Start on the track whose timeline ends last.
    let mut track = tl
        .tracks
        .values()
        .max_by_key(|t| t.spans.iter().map(|s| s.end_ns).max().unwrap_or(0))
        .map(|t| t.track)
        .expect("timeline has at least one track");
    let mut t = tl.window.1;
    let mut segments = Vec::new();
    let mut rendezvous = 0u64;
    loop {
        let empty = Vec::new();
        let list = gates.get(&track).unwrap_or(&empty);
        let p = list.partition_point(|&(start, _)| start < t);
        if p == 0 {
            // No rendezvous gated this stretch: pure local execution back
            // to the window start.
            if t > tl.window.0 {
                segments.push(CritSegment { track, start_ns: tl.window.0, end_ns: t });
            }
            break;
        }
        let (gate_start, round_idx) = list[p - 1];
        // The last arriver determines when this round released everyone.
        let (q, arrival) = rounds[round_idx]
            .spans
            .iter()
            .map(|(&id, &si)| (id, tl.tracks[&id].spans[si].start_ns))
            .max_by_key(|&(id, start)| (start, id))
            .expect("round has at least one participant");
        let (hop_track, hop_t) = if q != track && arrival < t {
            rendezvous += 1;
            (q, arrival)
        } else {
            // Current rank arrived last itself (or the trace is skewed):
            // the path stays local back to its own arrival.
            (track, gate_start.min(t))
        };
        if t > hop_t {
            segments.push(CritSegment { track, start_ns: hop_t, end_ns: t });
        }
        debug_assert!(hop_t < t, "critical-path walk must make progress");
        t = hop_t;
        track = hop_track;
        if t <= tl.window.0 {
            break;
        }
    }
    segments.reverse();
    CriticalPath { segments, rendezvous }
}

impl CriticalPath {
    /// Sum of segment lengths — equals the window length exactly when the
    /// walk tiled it (verified by `report::verify`).
    pub fn total_ns(&self) -> u64 {
        self.segments.iter().map(|s| s.end_ns - s.start_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Timeline;
    use mt_trace::{ArgValue, Tracer};

    fn comm_args(payload: u64) -> Vec<(&'static str, ArgValue)> {
        vec![("payload_bytes", ArgValue::U64(payload))]
    }

    /// Two ranks, one all-reduce. Rank 1 computes longer and arrives
    /// late; rank 0 waits. The path must run: rank1 compute → rendezvous
    /// → the slowest tail — and total exactly the window.
    #[test]
    fn path_jumps_to_the_last_arriver() {
        let t = Tracer::enabled();
        // rank 0: compute [0,10], all_reduce [10,42], tail [42,50]
        t.complete_at("kernel_gemm", 0, 0.0, 10.0, Vec::new());
        t.complete_at("all_reduce", 0, 10.0, 32.0, comm_args(64));
        t.complete_at("kernel_gemm", 0, 42.0, 8.0, Vec::new());
        // rank 1: compute [0,40], all_reduce [40,42], tail [42,44]
        t.complete_at("kernel_gemm", 1, 0.0, 40.0, Vec::new());
        t.complete_at("all_reduce", 1, 40.0, 2.0, comm_args(64));
        t.complete_at("kernel_gemm", 1, 42.0, 2.0, Vec::new());
        let tl = Timeline::build(&t.events()).unwrap();
        let rounds = collective_rounds(&tl).unwrap();
        assert_eq!(rounds.len(), 1);
        let path = critical_path(&tl, &rounds);
        assert_eq!(path.total_ns(), tl.wall_ns(), "path tiles the window exactly");
        assert_eq!(path.rendezvous, 1);
        // Forward order: rank 1 until its arrival at 40us, then rank 0
        // (the last-ending track) through the rendezvous and tail.
        assert_eq!(
            path.segments,
            vec![
                CritSegment { track: 1, start_ns: 0, end_ns: 40_000 },
                CritSegment { track: 0, start_ns: 40_000, end_ns: 50_000 },
            ]
        );
    }

    #[test]
    fn mismatched_round_signatures_are_rejected() {
        let t = Tracer::enabled();
        t.complete_at("all_reduce", 0, 0.0, 5.0, comm_args(64));
        t.complete_at("all_gather", 1, 0.0, 5.0, comm_args(64));
        let tl = Timeline::build(&t.events()).unwrap();
        assert!(collective_rounds(&tl).is_err());
    }

    #[test]
    fn no_collectives_means_one_local_segment() {
        let t = Tracer::enabled();
        t.complete_at("kernel_gemm", 0, 0.0, 30.0, Vec::new());
        let tl = Timeline::build(&t.events()).unwrap();
        let rounds = collective_rounds(&tl).unwrap();
        let path = critical_path(&tl, &rounds);
        assert_eq!(path.rendezvous, 0);
        assert_eq!(path.total_ns(), tl.wall_ns());
        assert_eq!(path.segments.len(), 1);
    }
}
