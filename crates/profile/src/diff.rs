//! Profile diffs: compare two [`ProfileReport`]s category by category and
//! turn a bare "step regressed ×1.8" into a narrative naming what
//! actually got slower.

use crate::attrib::CATEGORIES;
use crate::report::ProfileReport;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One category's movement between two runs (max-over-ranks ms).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CategoryDelta {
    /// Category label.
    pub category: String,
    /// Baseline milliseconds.
    pub base_ms: f64,
    /// Fresh-run milliseconds.
    pub fresh_ms: f64,
    /// `fresh - base`.
    pub delta_ms: f64,
    /// `fresh / base` (infinite when the baseline is 0).
    pub ratio: f64,
}

/// The per-category comparison of two profiles of the same config.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileDiff {
    /// Config label the two profiles describe.
    pub label: String,
    /// Baseline step wall, ms.
    pub base_step_ms: f64,
    /// Fresh step wall, ms.
    pub fresh_step_ms: f64,
    /// `fresh / base` step ratio.
    pub step_ratio: f64,
    /// Every category, sorted by `delta_ms` descending (worst regression
    /// first).
    pub deltas: Vec<CategoryDelta>,
}

/// Compares two profiles category by category (max over ranks on each
/// side).
pub fn diff_reports(base: &ProfileReport, fresh: &ProfileReport) -> ProfileDiff {
    let base_cats = base.max_categories();
    let fresh_cats = fresh.max_categories();
    let mut deltas: Vec<CategoryDelta> = CATEGORIES
        .iter()
        .map(|&cat| {
            let b = base_cats.get(cat) as f64 / 1e6;
            let f = fresh_cats.get(cat) as f64 / 1e6;
            CategoryDelta {
                category: cat.label().to_string(),
                base_ms: b,
                fresh_ms: f,
                delta_ms: f - b,
                ratio: if b > 0.0 {
                    f / b
                } else if f > 0.0 {
                    f64::INFINITY
                } else {
                    1.0
                },
            }
        })
        .collect();
    deltas.sort_by(|a, b| b.delta_ms.total_cmp(&a.delta_ms));
    let base_step_ms = base.step_wall_ns as f64 / 1e6;
    let fresh_step_ms = fresh.step_wall_ns as f64 / 1e6;
    ProfileDiff {
        label: fresh.label.clone(),
        base_step_ms,
        fresh_step_ms,
        step_ratio: fresh_step_ms / base_step_ms,
        deltas,
    }
}

/// A human-readable explanation of a diff: the step movement plus the
/// categories that drove it, largest regression named first.
pub fn narrative(diff: &ProfileDiff) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "profile-diff {:?}: step {:.3} ms → {:.3} ms (×{:.2})",
        diff.label, diff.base_step_ms, diff.fresh_step_ms, diff.step_ratio
    )
    .unwrap();
    let regressed: Vec<&CategoryDelta> = diff.deltas.iter().filter(|d| d.delta_ms > 0.0).collect();
    let improved: Vec<&CategoryDelta> = diff.deltas.iter().filter(|d| d.delta_ms < 0.0).collect();
    match regressed.first() {
        Some(worst) => {
            writeln!(
                out,
                "  largest regression: {} +{:.3} ms ({:.3} → {:.3} ms, ×{:.2})",
                worst.category, worst.delta_ms, worst.base_ms, worst.fresh_ms, worst.ratio
            )
            .unwrap();
            for d in regressed.iter().skip(1).filter(|d| d.delta_ms > 0.001) {
                writeln!(
                    out,
                    "  also regressed:     {} +{:.3} ms ({:.3} → {:.3} ms, ×{:.2})",
                    d.category, d.delta_ms, d.base_ms, d.fresh_ms, d.ratio
                )
                .unwrap();
            }
        }
        None => writeln!(out, "  no category regressed").unwrap(),
    }
    for d in improved.iter().rev().filter(|d| d.delta_ms < -0.001) {
        writeln!(
            out,
            "  improved:           {} {:.3} ms ({:.3} → {:.3} ms)",
            d.category, d.delta_ms, d.base_ms, d.fresh_ms
        )
        .unwrap();
    }
    out
}

/// The on-disk shape of `reports/PROFILE_*.json`: a format version plus a
/// map of config label → profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileDocument {
    /// Format version (mirrors [`crate::SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Config label → profile.
    pub profiles: BTreeMap<String, ProfileReport>,
}

impl ProfileDocument {
    /// Wraps labeled profiles in the current schema version.
    pub fn new(profiles: BTreeMap<String, ProfileReport>) -> Self {
        ProfileDocument { schema_version: crate::SCHEMA_VERSION, profiles }
    }

    /// Pretty JSON for `reports/`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile document serializes")
    }
}

/// Loads a `reports/PROFILE_*.json` document: a map of config label →
/// profile under a `profiles` key.
pub fn load_profiles(path: &str) -> Result<BTreeMap<String, ProfileReport>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
    serde_json::from_value::<BTreeMap<String, ProfileReport>>(&doc["profiles"])
        .map_err(|e| format!("{path} has no valid profiles map: {e}"))
}

/// Diffs every config label two profile documents share and concatenates
/// the narratives — the bench-gate failure path.
pub fn diff_documents(
    base: &BTreeMap<String, ProfileReport>,
    fresh: &BTreeMap<String, ProfileReport>,
) -> String {
    let mut out = String::new();
    for (label, fresh_report) in fresh {
        let Some(base_report) = base.get(label) else { continue };
        out.push_str(&narrative(&diff_reports(base_report, fresh_report)));
    }
    if out.is_empty() {
        out.push_str("profile-diff: no shared config labels between baseline and fresh run\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{analyze, AnalyzeOptions};
    use mt_trace::Tracer;

    fn synthetic_profile(comm_us: f64) -> ProfileReport {
        let t = Tracer::enabled();
        t.complete_at("kernel_gemm", 0, 0.0, 40.0, Vec::new());
        t.complete_at("all_reduce", 0, 40.0, comm_us, Vec::new());
        analyze(&t.events(), &AnalyzeOptions { label: "cfg".to_string(), ..Default::default() })
            .unwrap()
    }

    #[test]
    fn narrative_names_the_regressed_category() {
        let base = synthetic_profile(10.0);
        let fresh = synthetic_profile(35.0);
        let diff = diff_reports(&base, &fresh);
        assert!(diff.step_ratio > 1.4, "step must regress in this fixture: {diff:?}");
        assert_eq!(diff.deltas[0].category, "exposed_comm", "worst regression sorts first");
        let text = narrative(&diff);
        assert!(
            text.contains("largest regression: exposed_comm"),
            "narrative must name the category:\n{text}"
        );
    }

    #[test]
    fn identical_profiles_report_no_regression() {
        let base = synthetic_profile(10.0);
        let text = narrative(&diff_reports(&base, &base));
        assert!(text.contains("no category regressed"), "{text}");
    }
}
