//! Per-rank timeline reconstruction: raw [`TraceEvent`] streams → a
//! containment forest of spans per track, quantized to integer
//! nanoseconds.
//!
//! Quantization to `u64` nanoseconds is what makes every downstream
//! invariant *exact*: rounding is monotone (`a ≤ b ⇒ round(a) ≤ round(b)`),
//! so the tracer's guarantee that same-thread spans nest properly survives
//! the float→integer conversion, and segment lengths add up without float
//! drift.

use mt_trace::{ArgValue, EventKind, TraceEvent};
use std::collections::BTreeMap;

/// One reconstructed span interval on a track.
#[derive(Debug, Clone)]
pub struct Span {
    /// Span name as recorded (`all_reduce`, `kernel_gemm`, `step`, …).
    pub name: String,
    /// Start, integer nanoseconds since the tracer time base.
    pub start_ns: u64,
    /// End, integer nanoseconds since the tracer time base.
    pub end_ns: u64,
    /// Annotations carried by the span (open-time and close-time args).
    pub args: Vec<(String, ArgValue)>,
    /// Enclosing span, if any.
    pub parent: Option<usize>,
    /// Directly contained spans, in start order.
    pub children: Vec<usize>,
    /// Nesting depth (roots are 0).
    pub depth: usize,
}

impl Span {
    /// Interval length in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Integer value of an annotation, if present.
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
            ArgValue::U64(u) => Some(*u),
            ArgValue::I64(i) => u64::try_from(*i).ok(),
            _ => None,
        })
    }

    /// String value of an annotation, if present.
    pub fn arg_str(&self, key: &str) -> Option<&str> {
        self.args.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
            ArgValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
    }
}

/// All spans recorded on one track (rank lane), linked by containment.
#[derive(Debug, Clone)]
pub struct Track {
    /// Track id (rank).
    pub track: u32,
    /// Spans sorted by `(start asc, end desc)`; children follow parents.
    pub spans: Vec<Span>,
    /// Indices of top-level spans, in start order.
    pub roots: Vec<usize>,
}

/// A whole trace: every track plus the global step window.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Track id → reconstructed track.
    pub tracks: BTreeMap<u32, Track>,
    /// `[earliest span start, latest span end]` across all tracks. Every
    /// rank is attributed over this same window, so per-rank category
    /// totals are directly comparable and the critical path tiles it.
    pub window: (u64, u64),
}

impl Timeline {
    /// The profiled step wall time: the length of the global window.
    pub fn wall_ns(&self) -> u64 {
        self.window.1 - self.window.0
    }

    /// Reconstructs per-track containment forests from raw events.
    ///
    /// Only `Complete` events participate (instants and counters carry no
    /// duration). Fails if the trace has no complete spans at all.
    pub fn build(events: &[TraceEvent]) -> Result<Timeline, String> {
        let mut per_track: BTreeMap<u32, Vec<(usize, Span)>> = BTreeMap::new();
        for (rec_idx, ev) in events.iter().enumerate() {
            let EventKind::Complete { dur_us } = ev.kind else { continue };
            let start_ns = quantize_ns(ev.ts_us);
            let end_ns = quantize_ns(ev.ts_us + dur_us);
            per_track.entry(ev.track).or_default().push((
                rec_idx,
                Span {
                    name: ev.name.to_string(),
                    start_ns,
                    end_ns: end_ns.max(start_ns),
                    args: ev.args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
                    parent: None,
                    children: Vec::new(),
                    depth: 0,
                },
            ));
        }
        if per_track.is_empty() {
            return Err("trace contains no complete spans to profile".to_string());
        }
        let start = per_track.values().flatten().map(|(_, s)| s.start_ns).min().unwrap();
        let end = per_track.values().flatten().map(|(_, s)| s.end_ns).max().unwrap();

        let mut tracks = BTreeMap::new();
        for (track, mut spans) in per_track {
            // Spans are recorded in *close* order; for identical intervals
            // the later-recorded event is the outer one, so sorting the
            // record index descending puts parents before children.
            spans.sort_by(|(ia, a), (ib, b)| {
                a.start_ns.cmp(&b.start_ns).then(b.end_ns.cmp(&a.end_ns)).then(ib.cmp(ia))
            });
            let mut spans: Vec<Span> = spans.into_iter().map(|(_, s)| s).collect();
            let mut roots = Vec::new();
            let mut stack: Vec<usize> = Vec::new();
            for i in 0..spans.len() {
                while let Some(&top) = stack.last() {
                    // Pop anything that cannot contain this span. A span
                    // that straddles its predecessor's end (impossible for
                    // a well-nested single-thread trace, tolerated here)
                    // attaches to the nearest ancestor that does contain
                    // it.
                    if spans[i].start_ns >= spans[top].end_ns || spans[i].end_ns > spans[top].end_ns
                    {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                match stack.last() {
                    Some(&parent) => {
                        spans[i].parent = Some(parent);
                        spans[i].depth = spans[parent].depth + 1;
                        spans[parent].children.push(i);
                    }
                    None => roots.push(i),
                }
                stack.push(i);
            }
            tracks.insert(track, Track { track, spans, roots });
        }
        Ok(Timeline { tracks, window: (start, end) })
    }
}

/// Microseconds (f64, tracer clock) → integer nanoseconds, monotone.
fn quantize_ns(us: f64) -> u64 {
    (us * 1000.0).round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_trace::Tracer;

    #[test]
    fn nesting_survives_reconstruction() {
        let t = Tracer::enabled();
        // Synthetic clock: outer [0, 100us], two children, one grandchild.
        t.complete_at("leaf", 0, 20.0, 10.0, Vec::new());
        t.complete_at("mid_a", 0, 10.0, 30.0, Vec::new());
        t.complete_at("mid_b", 0, 50.0, 20.0, Vec::new());
        t.complete_at("outer", 0, 0.0, 100.0, Vec::new());
        let tl = Timeline::build(&t.events()).unwrap();
        assert_eq!(tl.window, (0, 100_000));
        let track = &tl.tracks[&0];
        assert_eq!(track.roots.len(), 1);
        let outer = &track.spans[track.roots[0]];
        assert_eq!(outer.name, "outer");
        let kids: Vec<&str> =
            outer.children.iter().map(|&c| track.spans[c].name.as_str()).collect();
        assert_eq!(kids, vec!["mid_a", "mid_b"]);
        let mid_a = &track.spans[outer.children[0]];
        assert_eq!(mid_a.children.len(), 1);
        assert_eq!(track.spans[mid_a.children[0]].name, "leaf");
        assert_eq!(track.spans[mid_a.children[0]].depth, 2);
    }

    #[test]
    fn identical_intervals_nest_by_record_order() {
        let t = Tracer::enabled();
        // Recorded in close order: inner first, outer second.
        t.complete_at("inner", 0, 5.0, 10.0, Vec::new());
        t.complete_at("outer", 0, 5.0, 10.0, Vec::new());
        let tl = Timeline::build(&t.events()).unwrap();
        let track = &tl.tracks[&0];
        assert_eq!(track.roots.len(), 1);
        assert_eq!(track.spans[track.roots[0]].name, "outer");
        assert_eq!(track.spans[track.roots[0]].children.len(), 1);
    }

    #[test]
    fn empty_trace_is_an_error() {
        assert!(Timeline::build(&[]).is_err());
    }
}
