//! End-to-end exactness contract of `mt-profile` on a real traced TP+SP
//! step: category nanoseconds sum to the wall time, the wrapped-comm and
//! wrapped-recompute span args reproduce the `StepTiming` ledger integer
//! for integer, the cross-rank critical path telescopes to the step wall,
//! and the report survives a JSON round trip with `verify` still passing.

use mt_collectives::World;
use mt_memory::Recompute;
use mt_model::weights::LayerWeights;
use mt_model::{
    take_step_timing, ActivationLedger, ExecMode, ExecPolicy, OverlapPolicy, StepTiming,
    TransformerConfig, TransformerLayer,
};
use mt_profile::{analyze, verify, AnalyzeOptions, ExpectedTiming, ProfileDocument, ProfileReport};
use mt_tensor::rng::{CounterRng, SplitMix64};
use mt_tensor::Tensor;
use mt_trace::Tracer;
use std::collections::BTreeMap;

const T: usize = 2;

fn config() -> TransformerConfig {
    TransformerConfig {
        hidden: 32,
        heads: 4,
        seq: 16,
        micro_batch: 2,
        layers: 1,
        vocab: 64,
        dropout_p: 0.0,
        causal: true,
    }
}

/// Runs one traced layer forward+backward and returns the events plus each
/// rank's `StepTiming` ledger.
fn traced_step(overlap: OverlapPolicy) -> (Vec<mt_trace::TraceEvent>, Vec<StepTiming>) {
    let cfg = config();
    let tracer = Tracer::enabled();
    let mut rng = SplitMix64::new(17);
    let full = LayerWeights::init(&cfg, &mut rng);
    let x = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    let dy = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    let mut world = World::new(T);
    world.set_tracer(tracer.clone());
    let per_rank = world.run_fallible(|comm| {
        let layer = TransformerLayer::new(
            cfg,
            full.shard(T, comm.rank()),
            0,
            Recompute::Selective,
            CounterRng::new(5),
        );
        let policy = ExecPolicy::builder()
            .backend(ExecMode::TensorSequenceParallel(&comm))
            .overlap(overlap)
            .build()
            .expect("valid overlap policy");
        let x_local = x.chunk_axis0(T).unwrap()[comm.rank()].clone();
        let dy_local = dy.chunk_axis0(T).unwrap()[comm.rank()].clone();
        let _ = take_step_timing();
        let mut ledger = ActivationLedger::new();
        let (_y, state) = layer.forward(&x_local, 0, policy, &mut ledger);
        let _ = layer.backward(&dy_local, state, policy);
        Ok(take_step_timing())
    });
    let timings = per_rank.into_iter().map(|r| r.expect("step failed")).collect();
    (tracer.events(), timings)
}

fn ledger_map(timings: &[StepTiming]) -> BTreeMap<u32, ExpectedTiming> {
    timings
        .iter()
        .enumerate()
        .map(|(rank, t)| {
            (
                rank as u32,
                ExpectedTiming {
                    comm_us: t.comm_us,
                    exposed_us: t.exposed_us,
                    recompute_us: t.recompute_us,
                    exposed_recompute_us: t.exposed_recompute_us,
                },
            )
        })
        .collect()
}

fn analyze_with_ledger(
    events: &[mt_trace::TraceEvent],
    timings: &[StepTiming],
    label: &str,
) -> ProfileReport {
    let opts = AnalyzeOptions {
        label: label.to_string(),
        expected_ledger: ledger_map(timings),
        ..Default::default()
    };
    analyze(events, &opts).expect("analysis upholds every exact invariant")
}

#[test]
fn exposed_step_attribution_is_exact_and_matches_the_ledger() {
    let (events, timings) = traced_step(OverlapPolicy::Exposed);
    let report = analyze_with_ledger(&events, &timings, "exposed");

    assert_eq!(report.ranks.len(), T);
    for (rank, profile) in report.ranks.values().enumerate() {
        // analyze() already errored if these failed; restate the contract.
        assert_eq!(profile.categories.total(), report.step_wall_ns);
        assert_eq!(profile.wrapped_comm_us, timings[rank].comm_us);
        assert_eq!(profile.wrapped_exposed_us, timings[rank].exposed_us);
        assert_eq!(profile.wrapped_recompute_us, timings[rank].recompute_us);
        assert_eq!(profile.wrapped_exposed_recompute_us, timings[rank].exposed_recompute_us);
        assert!(profile.categories.exposed_comm > 0, "TP+SP step must expose comm");
        assert!(profile.categories.exposed_recompute > 0, "selective recompute must show up");
        assert_eq!(profile.categories.overlapped_comm, 0, "no overlap driver ran");
        assert_eq!(profile.categories.overlapped_recompute, 0, "no prefetch driver ran");
    }
    assert_eq!(report.critical_path.total_ns, report.step_wall_ns, "path telescopes");
    assert_eq!(
        report.critical_path.categories.total(),
        report.step_wall_ns,
        "path attribution is exact too"
    );
}

#[test]
fn overlapped_step_shows_overlapped_comm_and_still_balances() {
    let (events, timings) = traced_step(OverlapPolicy::Overlapped { chunks: 2 });
    let report = analyze_with_ledger(&events, &timings, "overlapped_c2");
    let cats = report.max_categories();
    assert!(cats.overlapped_comm > 0, "chunked fetches must land under the driver: {cats:?}");
    for profile in report.ranks.values() {
        assert_eq!(profile.categories.total(), report.step_wall_ns);
    }
    assert_eq!(report.critical_path.total_ns, report.step_wall_ns);
}

#[test]
fn overlapped_recompute_step_splits_the_recompute_ledger_and_balances() {
    let (events, timings) =
        traced_step(OverlapPolicy::overlapped_recompute(2).expect("nonzero chunks"));
    let report = analyze_with_ledger(&events, &timings, "overlapped_recompute_c2");
    for (rank, profile) in report.ranks.values().enumerate() {
        assert_eq!(profile.categories.total(), report.step_wall_ns);
        assert_eq!(profile.wrapped_recompute_us, timings[rank].recompute_us);
        assert_eq!(profile.wrapped_exposed_recompute_us, timings[rank].exposed_recompute_us);
        assert!(
            profile.wrapped_recompute_us >= profile.wrapped_exposed_recompute_us,
            "exposed recompute cannot exceed total recompute"
        );
        assert!(
            profile.categories.overlapped_recompute > 0,
            "the prefetch driver must show up: {:?}",
            profile.categories
        );
        // No inline replay ran, so any exposed-recompute ns can come only
        // from the join-wait span (which may legitimately be nonzero when
        // the replay outlasts the covering backward half).
    }
    assert_eq!(report.critical_path.total_ns, report.step_wall_ns);
}

#[test]
fn a_doctored_ledger_fails_analysis() {
    let (events, timings) = traced_step(OverlapPolicy::Exposed);
    let mut ledger = ledger_map(&timings);
    ledger.get_mut(&0).unwrap().exposed_us += 1; // one microsecond of drift
    let opts = AnalyzeOptions {
        label: "doctored".to_string(),
        expected_ledger: ledger,
        ..Default::default()
    };
    let err = analyze(&events, &opts).unwrap_err();
    assert!(err.contains("ledger check failed"), "wrong error: {err}");
}

#[test]
fn report_survives_a_json_round_trip_and_verify_catches_corruption() {
    let (events, timings) = traced_step(OverlapPolicy::Exposed);
    let report = analyze_with_ledger(&events, &timings, "roundtrip");

    let doc = ProfileDocument::new(BTreeMap::from([(report.label.clone(), report.clone())]));
    let back: ProfileDocument = serde_json::from_str(&doc.to_json()).expect("document round-trips");
    let restored = &back.profiles["roundtrip"];
    assert_eq!(restored.step_wall_ns, report.step_wall_ns);
    assert_eq!(restored.ranks, report.ranks);
    verify(restored).expect("restored report still verifies");

    let mut corrupted = restored.clone();
    corrupted.ranks.get_mut("0").unwrap().categories.gemm += 1;
    let err = verify(&corrupted).unwrap_err();
    assert!(err.contains("categories sum"), "wrong error: {err}");
}
