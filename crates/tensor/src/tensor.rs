//! The dense row-major [`Tensor`] type.

use crate::error::TensorError;
use crate::rng::SplitMix64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, `f32` tensor.
///
/// This is deliberately the simplest representation that can express a
/// transformer: a shape vector and a flat `Vec<f32>`. There are no strides,
/// no views, and no reference counting — slicing copies. For the tiny models
/// this workspace executes (hidden sizes in the tens to hundreds) that is
/// both fast enough and much easier to reason about when auditing which
/// activations a training step actually *stores*.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and flat row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the product of `shape`.
    ///
    /// ```
    /// use mt_tensor::Tensor;
    /// let t = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.])?;
    /// assert_eq!(t.numel(), 4);
    /// # Ok::<(), mt_tensor::TensorError>(())
    /// ```
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::LengthMismatch { expected, got: data.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor from a shape and flat row-major data **whose length
    /// the caller has already established** — the infallible path for
    /// operator kernels that compute `data` at exactly `shape.product()`
    /// elements by construction.
    ///
    /// The length invariant is checked in debug builds only; use
    /// [`Tensor::from_vec`] whenever the length comes from outside.
    pub fn from_vec_unchecked(shape: Vec<usize>, data: Vec<f32>) -> Self {
        debug_assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "from_vec_unchecked: length does not match shape"
        );
        Tensor { shape, data }
    }

    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![0.0; numel] }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![value; numel] }
    }

    /// Creates a tensor whose elements are produced by `f(flat_index)`.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let numel: usize = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: (0..numel).map(&mut f).collect() }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut SplitMix64) -> Self {
        Self::from_fn(shape, |_| lo + (hi - lo) * rng.next_f32())
    }

    /// Creates a tensor with elements drawn from `N(0, std^2)`.
    ///
    /// Used for weight initialization; matches the scale-by-`std` convention
    /// of GPT initializers.
    pub fn rand_normal(shape: &[usize], std: f32, rng: &mut SplitMix64) -> Self {
        Self::from_fn(shape, |_| std * rng.next_gaussian())
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The number of axes.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Length of axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.shape[axis]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.numel() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape.clone(),
                to: shape.to_vec(),
            });
        }
        Ok(Tensor { shape: shape.to_vec(), data: self.data.clone() })
    }

    /// Number of rows when the tensor is viewed as a 2-D matrix
    /// `[rows, cols]` by flattening all leading axes.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has rank 0.
    pub fn rows(&self) -> usize {
        assert!(self.rank() >= 1, "rows() requires rank >= 1");
        self.numel() / self.shape[self.rank() - 1]
    }

    /// Number of columns: the length of the trailing axis.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has rank 0.
    pub fn cols(&self) -> usize {
        assert!(self.rank() >= 1, "cols() requires rank >= 1");
        self.shape[self.rank() - 1]
    }

    /// Element access for a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if out of bounds.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Splits the tensor into `parts` equal chunks along axis 0.
    ///
    /// This is the primitive behind both sequence-parallel sharding (split
    /// along `s`) and reduce-scatter semantics.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnevenSplit`] if axis 0 is not divisible by
    /// `parts`.
    pub fn chunk_axis0(&self, parts: usize) -> Result<Vec<Tensor>, TensorError> {
        let axis_len = self.shape[0];
        if parts == 0 || !axis_len.is_multiple_of(parts) {
            return Err(TensorError::UnevenSplit { axis_len, parts });
        }
        let rows_per = axis_len / parts;
        let stride: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = rows_per;
        Ok((0..parts)
            .map(|p| {
                let start = p * rows_per * stride;
                Tensor {
                    shape: shape.clone(),
                    data: self.data[start..start + rows_per * stride].to_vec(),
                }
            })
            .collect())
    }

    /// Splits the tensor into `parts` equal chunks along the trailing axis.
    ///
    /// This is the primitive behind tensor-parallel column sharding.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnevenSplit`] if the trailing axis is not
    /// divisible by `parts`.
    pub fn chunk_last_axis(&self, parts: usize) -> Result<Vec<Tensor>, TensorError> {
        let cols = self.cols();
        if parts == 0 || !cols.is_multiple_of(parts) {
            return Err(TensorError::UnevenSplit { axis_len: cols, parts });
        }
        let cols_per = cols / parts;
        let rows = self.rows();
        let mut shape = self.shape.clone();
        *shape.last_mut().expect("rank >= 1") = cols_per;
        Ok((0..parts)
            .map(|p| {
                let mut data = Vec::with_capacity(rows * cols_per);
                for r in 0..rows {
                    let start = r * cols + p * cols_per;
                    data.extend_from_slice(&self.data[start..start + cols_per]);
                }
                Tensor { shape: shape.clone(), data }
            })
            .collect())
    }

    /// Concatenates tensors along axis 0. All inputs must agree on the
    /// trailing shape.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or shapes beyond axis 0 differ.
    pub fn concat_axis0(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_axis0 needs at least one tensor");
        let tail = &parts[0].shape[1..];
        let mut total_rows = 0;
        for p in parts {
            assert_eq!(&p.shape[1..], tail, "concat_axis0: trailing shapes differ");
            total_rows += p.shape[0];
        }
        let mut shape = parts[0].shape.clone();
        shape[0] = total_rows;
        let mut data = Vec::with_capacity(shape.iter().product());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor { shape, data }
    }

    /// Concatenates tensors along the trailing axis. All inputs must agree on
    /// the leading shape.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or leading shapes differ.
    pub fn concat_last_axis(parts: &[Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_last_axis needs at least one tensor");
        let rows = parts[0].rows();
        let lead = &parts[0].shape[..parts[0].rank() - 1];
        let mut total_cols = 0;
        for p in parts {
            assert_eq!(&p.shape[..p.rank() - 1], lead, "concat_last_axis: leading shapes differ");
            total_cols += p.cols();
        }
        let mut shape = parts[0].shape.clone();
        *shape.last_mut().expect("rank >= 1") = total_cols;
        let mut data = Vec::with_capacity(rows * total_cols);
        for r in 0..rows {
            for p in parts {
                let c = p.cols();
                data.extend_from_slice(&p.data[r * c..(r + 1) * c]);
            }
        }
        Tensor { shape, data }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose2 requires a rank-2 tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut data = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                data[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { shape: vec![n, m], data }
    }

    /// Element-wise sum of two tensors of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// In-place element-wise accumulation: `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Returns a tensor scaled by `alpha`.
    pub fn scale(&self, alpha: f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|v| v * alpha).collect() }
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute element; 0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, v| m.max(v.abs()))
    }

    /// Maximum absolute element-wise difference between two tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff: shape mismatch");
        self.data.iter().zip(&other.data).fold(0.0_f32, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Whether every element of `self` is within `atol + rtol * |other|` of
    /// the corresponding element of `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn allclose(&self, other: &Tensor, rtol: f32, atol: f32) -> bool {
        assert_eq!(self.shape, other.shape, "allclose: shape mismatch");
        self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= atol + rtol * b.abs())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:.4}, {:.4}, … ; numel={}]", self.data[0], self.data[1], self.numel())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![0.0; 3]).is_err());
        assert!(Tensor::from_vec(vec![2, 2], vec![0.0; 4]).is_ok());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn chunk_and_concat_axis0_roundtrip() {
        let t = Tensor::from_fn(&[6, 2], |i| i as f32);
        let parts = t.chunk_axis0(3).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[1].shape(), &[2, 2]);
        assert_eq!(parts[1].data(), &[4., 5., 6., 7.]);
        let back = Tensor::concat_axis0(&parts);
        assert_eq!(back, t);
    }

    #[test]
    fn chunk_and_concat_last_axis_roundtrip() {
        let t = Tensor::from_fn(&[2, 6], |i| i as f32);
        let parts = t.chunk_last_axis(2).unwrap();
        assert_eq!(parts[0].shape(), &[2, 3]);
        assert_eq!(parts[0].data(), &[0., 1., 2., 6., 7., 8.]);
        let back = Tensor::concat_last_axis(&parts);
        assert_eq!(back, t);
    }

    #[test]
    fn chunk_axis0_rejects_uneven() {
        let t = Tensor::zeros(&[5, 2]);
        assert!(t.chunk_axis0(2).is_err());
    }

    #[test]
    fn transpose2_involution() {
        let t = Tensor::from_fn(&[3, 4], |i| i as f32);
        assert_eq!(t.transpose2().transpose2(), t);
        assert_eq!(t.transpose2().at2(2, 1), t.at2(1, 2));
    }

    #[test]
    fn arithmetic_helpers() {
        let a = Tensor::from_vec(vec![3], vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![0.5, 0.5, 0.5]).unwrap();
        assert_eq!(a.add(&b).data(), &[1.5, 2.5, 3.5]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.data(), &[2., 3., 4.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
        assert!((a.sum() - 6.0).abs() < 1e-6);
        assert_eq!(a.max_abs(), 3.0);
        assert!(a.allclose(&a, 0.0, 0.0));
        assert!((a.max_abs_diff(&b) - 2.5).abs() < 1e-6);
    }
}
