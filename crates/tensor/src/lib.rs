//! # mt-tensor
//!
//! A small, deterministic, CPU-only tensor library that provides exactly the
//! operations a GPT-style transformer needs — each with a hand-written
//! backward pass — so that the rest of the workspace can *execute* the
//! parallelism and recomputation strategies described in
//! *"Reducing Activation Recomputation in Large Transformer Models"*
//! (Korthikanti et al., MLSys 2023) rather than merely model them.
//!
//! Design points:
//!
//! * **Determinism.** All randomness flows through [`rng::SplitMix64`]
//!   (initialization) or [`rng::CounterRng`] (dropout masks). A counter-based
//!   RNG lets a recomputation pass regenerate *bit-identical* dropout masks
//!   from a `(seed, stream, offset)` triple without storing the mask — the
//!   same trick CUDA's Philox RNG state-replay plays in Megatron-LM.
//! * **Explicit activation accounting.** Ops do not hide what they keep for
//!   the backward pass: every op is a pair of pure functions
//!   (`forward` → output + whatever must be saved, `backward` ← gradients),
//!   so the model layer above can put each saved tensor on a ledger and
//!   compare measured bytes against the paper's Equations 1–6.
//! * **`f32` math, paper-accounted bytes.** We compute in `f32` for
//!   simplicity; the memory model accounts activations at the paper's 2
//!   bytes/element (fp16) and 1 byte/element for dropout masks.
//! * **Kernels live below.** The hot loops (GEMM, softmax, LayerNorm, GeLU)
//!   are the `mt-kernels` crate's tiled, optionally-threaded slice kernels;
//!   this crate adds shapes, checking, and save-for-backward structure. The
//!   [`Backend`] selector (re-exported here) picks serial vs threaded
//!   execution — results are bit-identical either way.
//!
//! ## Example
//!
//! ```
//! use mt_tensor::{Tensor, ops::Gemm};
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
//! let b = Tensor::from_vec(vec![3, 2], vec![1., 0., 0., 1., 1., 1.]).unwrap();
//! let c = Gemm::NN.apply(&a, &b);
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data(), &[4., 5., 10., 11.]);
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod error;
pub mod ops;
pub mod rng;
mod tensor;

pub use error::TensorError;
pub use mt_kernels::{default_backend, set_default_backend, Backend};
pub use tensor::Tensor;
