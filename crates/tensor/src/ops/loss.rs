//! Fused softmax cross-entropy over logits.

use crate::Tensor;

/// Result of [`cross_entropy`].
#[derive(Debug, Clone)]
pub struct CrossEntropyOutput {
    /// Mean negative log-likelihood over all rows.
    pub loss: f32,
    /// Gradient of the mean loss with respect to the logits,
    /// `(softmax(logits) − onehot(target)) / rows`.
    pub dlogits: Tensor,
}

/// Mean softmax cross-entropy between `logits: [n, vocab]` and integer
/// `targets`.
///
/// The backward pass is fused (the classic `p − onehot` identity), so the
/// only tensor that has to live until back-propagation is the **logits**
/// themselves — which the paper charges at 4 bytes/element because the loss
/// is computed in fp32 (`4sbv/t` in Section 4.3).
///
/// # Panics
///
/// Panics if `targets.len() != n` or any target is out of vocabulary range.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> CrossEntropyOutput {
    assert_eq!(logits.rank(), 2, "cross_entropy: logits must be [n, vocab]");
    let (n, v) = (logits.dim(0), logits.dim(1));
    assert_eq!(targets.len(), n, "cross_entropy: target count mismatch");
    let mut dlogits = logits.clone();
    let mut loss = 0.0_f64;
    #[allow(clippy::needless_range_loop)] // r indexes the logits rows and `targets` jointly
    for r in 0..n {
        let t = targets[r];
        assert!(t < v, "cross_entropy: target {t} out of range (vocab {v})");
        let row = &mut dlogits.data_mut()[r * v..(r + 1) * v];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut sum = 0.0_f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        loss -= ((row[t] / sum) as f64).ln();
        let inv_n = 1.0 / n as f32;
        for (j, x) in row.iter_mut().enumerate() {
            let p = *x / sum;
            *x = (p - if j == t { 1.0 } else { 0.0 }) * inv_n;
        }
    }
    CrossEntropyOutput { loss: (loss / n as f64) as f32, dlogits }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_v() {
        let logits = Tensor::zeros(&[2, 8]);
        let out = cross_entropy(&logits, &[0, 3]);
        assert!((out.loss - (8.0_f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let mut rng = crate::rng::SplitMix64::new(14);
        let logits = Tensor::rand_uniform(&[3, 5], -2.0, 2.0, &mut rng);
        let out = cross_entropy(&logits, &[1, 4, 0]);
        for r in 0..3 {
            let s: f32 = out.dlogits.data()[r * 5..(r + 1) * 5].iter().sum();
            assert!(s.abs() < 1e-5, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = crate::rng::SplitMix64::new(15);
        let logits = Tensor::rand_uniform(&[4, 6], -1.0, 1.0, &mut rng);
        let targets = [2, 0, 5, 3];
        let out = cross_entropy(&logits, &targets);
        let fd = crate::check::finite_diff(&logits, |t| cross_entropy(t, &targets).loss);
        assert!(crate::check::grads_close(&out.dlogits, &fd));
    }

    #[test]
    fn perfect_prediction_has_small_loss() {
        let mut logits = Tensor::full(&[1, 4], -10.0);
        logits.data_mut()[2] = 10.0;
        let out = cross_entropy(&logits, &[2]);
        assert!(out.loss < 1e-3);
    }
}
