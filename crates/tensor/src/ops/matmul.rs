//! Dense matrix multiplication behind the [`Gemm`] descriptor, plus the
//! matmul backward pass.
//!
//! One descriptor replaces the former `matmul` / `matmul_nt` / `matmul_tn`
//! triplication: `Gemm { transpose_a, transpose_b }` names the operand
//! layouts and [`Gemm::apply`] dispatches to the tiled `mt-kernels` GEMM.

use crate::Tensor;
use mt_kernels::Backend;

/// A GEMM descriptor: `C = op(A) · op(B)` where each `op` is transpose or
/// identity, selected per operand.
///
/// The four flag combinations have named constants — [`Gemm::NN`],
/// [`Gemm::NT`], [`Gemm::TN`], [`Gemm::TT`] — and the expected operand
/// shapes follow from the flags (output is always `[m, n]`):
///
/// | descriptor | A        | B        | computes  | classic name |
/// |------------|----------|----------|-----------|--------------|
/// | `NN`       | `[m, k]` | `[k, n]` | `A · B`   | `matmul`     |
/// | `NT`       | `[m, k]` | `[n, k]` | `A · Bᵀ`  | `matmul_nt`  |
/// | `TN`       | `[k, m]` | `[k, n]` | `Aᵀ · B`  | `matmul_tn`  |
/// | `TT`       | `[k, m]` | `[n, k]` | `Aᵀ · Bᵀ` | —            |
///
/// ```
/// use mt_tensor::{ops::Gemm, Tensor};
/// let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.])?;
/// let c = Gemm::NN.apply(&a, &b);
/// assert_eq!(c.data(), &[58., 64., 139., 154.]);
/// # Ok::<(), mt_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gemm {
    /// Treat `A` as transposed (`A` is stored `[k, m]`).
    pub transpose_a: bool,
    /// Treat `B` as transposed (`B` is stored `[n, k]`).
    pub transpose_b: bool,
}

impl Gemm {
    /// `C = A · B` — the plain forward GEMM.
    pub const NN: Gemm = Gemm { transpose_a: false, transpose_b: false };
    /// `C = A · Bᵀ` — e.g. `dA = dC · Bᵀ` without materializing the
    /// transpose.
    pub const NT: Gemm = Gemm { transpose_a: false, transpose_b: true };
    /// `C = Aᵀ · B` — e.g. `dW = Xᵀ · dY` without materializing the
    /// transpose.
    pub const TN: Gemm = Gemm { transpose_a: true, transpose_b: false };
    /// `C = Aᵀ · Bᵀ` — kept for descriptor completeness.
    pub const TT: Gemm = Gemm { transpose_a: true, transpose_b: true };

    /// Short label (`"nn"`, `"nt"`, `"tn"`, `"tt"`) for traces and reports.
    pub fn kind(&self) -> &'static str {
        mt_kernels::gemm::kind_label(self.transpose_a, self.transpose_b)
    }

    /// Runs the GEMM with the process default backend
    /// ([`mt_kernels::default_backend`]). The kernel sizes its own worker
    /// fan-out to the problem's FLOPs
    /// ([`mt_kernels::Backend::threads_for_work`]), so tiny shapes run
    /// serial without a tensor-level cutoff here. Bit-identical to any
    /// explicit backend choice.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the inner dims disagree.
    pub fn apply(&self, a: &Tensor, b: &Tensor) -> Tensor {
        let (m, n, k) = self.dims(a, b);
        self.run(mt_kernels::default_backend(), m, n, k, a, b)
    }

    /// Runs the GEMM on an explicit [`Backend`] instead of the process
    /// default (benches and equivalence tests want exact control). The
    /// backend's thread count is still an upper bound — the kernel's
    /// work-size policy decides the actual fan-out.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not rank 2 or the inner dims disagree.
    pub fn apply_with(&self, backend: Backend, a: &Tensor, b: &Tensor) -> Tensor {
        let (m, n, k) = self.dims(a, b);
        self.run(backend, m, n, k, a, b)
    }

    /// Shape-checks the operands against the descriptor and returns
    /// `(m, n, k)`.
    fn dims(&self, a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
        assert_eq!(a.rank(), 2, "gemm {}: A must be rank 2", self.kind());
        assert_eq!(b.rank(), 2, "gemm {}: B must be rank 2", self.kind());
        let (m, ka) = if self.transpose_a { (a.dim(1), a.dim(0)) } else { (a.dim(0), a.dim(1)) };
        let (kb, n) = if self.transpose_b { (b.dim(1), b.dim(0)) } else { (b.dim(0), b.dim(1)) };
        assert_eq!(ka, kb, "gemm {}: inner dims {ka} vs {kb}", self.kind());
        (m, n, ka)
    }

    fn run(
        &self,
        backend: Backend,
        m: usize,
        n: usize,
        k: usize,
        a: &Tensor,
        b: &Tensor,
    ) -> Tensor {
        let mut out = vec![0.0_f32; m * n];
        mt_kernels::gemm::gemm(
            backend,
            self.transpose_a,
            self.transpose_b,
            m,
            n,
            k,
            a.data(),
            b.data(),
            &mut out,
        );
        Tensor::from_vec_unchecked(vec![m, n], out)
    }
}

/// Backward of a forward `Gemm::NN.apply(a, b)`: given saved inputs `a`, `b`
/// and upstream `dc`, returns `(dA, dB)` via the `NT`/`TN` descriptors.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the forward GEMM.
pub fn matmul_backward(a: &Tensor, b: &Tensor, dc: &Tensor) -> (Tensor, Tensor) {
    let da = Gemm::NT.apply(dc, b);
    let db = Gemm::TN.apply(a, dc);
    (da, db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_nn_known_values() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = Gemm::NN.apply(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn all_descriptors_match_explicit_transpose() {
        let mut rng = crate::rng::SplitMix64::new(1);
        let a = Tensor::rand_uniform(&[4, 5], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[6, 5], -1.0, 1.0, &mut rng);
        assert!(Gemm::NT.apply(&a, &b).allclose(&Gemm::NN.apply(&a, &b.transpose2()), 1e-5, 1e-6));
        assert!(Gemm::TN.apply(&a.transpose2(), &b.transpose2()).allclose(
            &Gemm::NN.apply(&a, &b.transpose2()),
            1e-5,
            1e-6
        ));
        assert!(Gemm::TT.apply(&a.transpose2(), &b).allclose(
            &Gemm::NN.apply(&a, &b.transpose2()),
            1e-5,
            1e-6
        ));
    }

    #[test]
    fn apply_with_threaded_is_bit_identical_to_serial() {
        let mut rng = crate::rng::SplitMix64::new(11);
        let a = Tensor::rand_uniform(&[70, 65], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[65, 19], -1.0, 1.0, &mut rng);
        let serial = Gemm::NN.apply_with(Backend::Serial, &a, &b);
        for threads in 1..=8 {
            let mt = Gemm::NN.apply_with(Backend::Threaded { threads }, &a, &b);
            assert!(
                serial.data().iter().zip(mt.data()).all(|(s, t)| s.to_bits() == t.to_bits()),
                "threads={threads}: not bit-identical"
            );
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = crate::rng::SplitMix64::new(2);
        let a = Tensor::rand_uniform(&[3, 4], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[4, 2], -1.0, 1.0, &mut rng);
        // Loss = sum(A·B); upstream gradient is all ones.
        let dc = Tensor::full(&[3, 2], 1.0);
        let (da, db) = matmul_backward(&a, &b, &dc);
        let fd_da = crate::check::finite_diff(&a, |t| Gemm::NN.apply(t, &b).sum());
        let fd_db = crate::check::finite_diff(&b, |t| Gemm::NN.apply(&a, t).sum());
        assert!(crate::check::grads_close(&da, &fd_da), "dA mismatch");
        assert!(crate::check::grads_close(&db, &fd_db), "dB mismatch");
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn gemm_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = Gemm::NN.apply(&a, &b);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn gemm_shape_check_respects_transpose_flags() {
        // NT reads B as [n, k]: B [4, 2] has k = 2, mismatching A's k = 3.
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = Gemm::NT.apply(&a, &b);
    }
}
