//! Dense matrix multiplication and its backward pass.

use crate::Tensor;

/// `C = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// Backward needs **both inputs saved**: `dA = dC · Bᵀ` and `dB = Aᵀ · dC`.
/// This is why the paper charges the attention and MLP GEMMs for their input
/// activations (e.g. the `2sbh` term for the h→4h linear in Section 4.1).
///
/// # Panics
///
/// Panics if the inner dimensions disagree or either tensor is not rank 2.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul: A must be rank 2");
    assert_eq!(b.rank(), 2, "matmul: B must be rank 2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul: inner dims {k} vs {k2}");
    let mut out = vec![0.0_f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    // i-k-j loop order: streams through B and C rows for cache friendliness.
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    Tensor::from_vec(vec![m, n], out).expect("matmul: internal shape invariant")
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` — used for `dA = dC · Bᵀ`
/// without materializing the transpose.
///
/// # Panics
///
/// Panics if the contraction dimensions disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_nt: A must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_nt: B must be rank 2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, k2) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul_nt: contraction dims {k} vs {k2}");
    let mut out = vec![0.0_f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(vec![m, n], out).expect("matmul_nt: internal shape invariant")
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` — used for `dW = Xᵀ · dY`
/// without materializing the transpose.
///
/// # Panics
///
/// Panics if the contraction dimensions disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_tn: A must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_tn: B must be rank 2");
    let (k, m) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul_tn: contraction dims {k} vs {k2}");
    let mut out = vec![0.0_f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    for kk in 0..k {
        let arow = &ad[kk * m..(kk + 1) * m];
        let brow = &bd[kk * n..(kk + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let crow = &mut out[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
    Tensor::from_vec(vec![m, n], out).expect("matmul_tn: internal shape invariant")
}

/// Backward of [`matmul`]: given saved inputs `a`, `b` and upstream `dc`,
/// returns `(dA, dB)`.
///
/// # Panics
///
/// Panics if shapes are inconsistent with a forward `matmul(a, b)`.
pub fn matmul_backward(a: &Tensor, b: &Tensor, dc: &Tensor) -> (Tensor, Tensor) {
    let da = matmul_nt(dc, b);
    let db = matmul_tn(a, dc);
    (da, db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn nt_and_tn_match_explicit_transpose() {
        let mut rng = crate::rng::SplitMix64::new(1);
        let a = Tensor::rand_uniform(&[4, 5], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[6, 5], -1.0, 1.0, &mut rng);
        let c = Tensor::rand_uniform(&[5, 6], -1.0, 1.0, &mut rng);
        assert!(matmul_nt(&a, &b).allclose(&matmul(&a, &b.transpose2()), 1e-5, 1e-6));
        assert!(matmul_tn(&c, &b.transpose2().transpose2().transpose2())
            .allclose(&matmul(&c.transpose2(), &b.transpose2()), 1e-5, 1e-6));
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = crate::rng::SplitMix64::new(2);
        let a = Tensor::rand_uniform(&[3, 4], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[4, 2], -1.0, 1.0, &mut rng);
        // Loss = sum(A·B); upstream gradient is all ones.
        let dc = Tensor::full(&[3, 2], 1.0);
        let (da, db) = matmul_backward(&a, &b, &dc);
        let fd_da = crate::check::finite_diff(&a, |t| matmul(t, &b).sum());
        let fd_db = crate::check::finite_diff(&b, |t| matmul(&a, t).sum());
        assert!(crate::check::grads_close(&da, &fd_da), "dA mismatch");
        assert!(crate::check::grads_close(&db, &fd_db), "dB mismatch");
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }
}
