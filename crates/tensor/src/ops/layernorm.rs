//! Layer normalization over the trailing axis, with affine parameters —
//! shape-checked wrappers over the `mt-kernels` row kernels.

use crate::Tensor;

/// Statistics saved by [`layer_norm`] for the backward pass.
///
/// Per the paper (Section 4): the LayerNorm backward needs the layer **input**
/// (`2sbh` bytes) plus per-row mean and reciprocal standard deviation (`2sb`
/// elements each — negligible next to `sbh`, which is why Equation 1 ignores
/// them; we keep them anyway for exactness).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerNormSaved {
    /// Per-row mean of the input.
    pub mean: Vec<f32>,
    /// Per-row `1 / sqrt(var + eps)`.
    pub rstd: Vec<f32>,
}

const EPS: f32 = 1e-5;

/// LayerNorm forward over the trailing axis:
/// `y = γ ⊙ (x − μ)/σ + β`.
///
/// Returns the output and the per-row statistics needed (together with the
/// input) by [`layer_norm_backward`].
///
/// # Panics
///
/// Panics if `gamma`/`beta` lengths differ from the trailing axis of `x`.
pub fn layer_norm(x: &Tensor, gamma: &Tensor, beta: &Tensor) -> (Tensor, LayerNormSaved) {
    let cols = x.cols();
    assert_eq!(gamma.numel(), cols, "layer_norm: gamma length mismatch");
    assert_eq!(beta.numel(), cols, "layer_norm: beta length mismatch");
    let rows = x.rows();
    let mut out = x.clone();
    let mut mean = vec![0.0_f32; rows];
    let mut rstd = vec![0.0_f32; rows];
    let backend = super::rowwise_backend(rows * cols);
    mt_kernels::layer_norm(
        backend,
        rows,
        cols,
        EPS,
        x.data(),
        gamma.data(),
        beta.data(),
        out.data_mut(),
        &mut mean,
        &mut rstd,
    );
    (out, LayerNormSaved { mean, rstd })
}

/// Backward of [`layer_norm`]: given saved input `x`, statistics, parameters
/// and upstream `dy`, returns `(dx, dgamma, dbeta)`.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the forward call.
pub fn layer_norm_backward(
    x: &Tensor,
    gamma: &Tensor,
    saved: &LayerNormSaved,
    dy: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    assert_eq!(x.shape(), dy.shape(), "layer_norm_backward: shape mismatch");
    let cols = x.cols();
    let rows = x.rows();
    assert_eq!(saved.mean.len(), rows, "layer_norm_backward: saved stats mismatch");
    let mut dx = x.clone();
    let mut dgamma = Tensor::zeros(&[cols]);
    let mut dbeta = Tensor::zeros(&[cols]);
    let backend = super::rowwise_backend(rows * cols);
    mt_kernels::layer_norm_backward(
        backend,
        rows,
        cols,
        x.data(),
        gamma.data(),
        &saved.mean,
        &saved.rstd,
        dy.data(),
        dx.data_mut(),
        dgamma.data_mut(),
        dbeta.data_mut(),
    );
    (dx, dgamma, dbeta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn output_is_normalized_with_unit_affine() {
        let mut rng = SplitMix64::new(8);
        let x = Tensor::rand_uniform(&[6, 32], -5.0, 5.0, &mut rng);
        let gamma = Tensor::full(&[32], 1.0);
        let beta = Tensor::zeros(&[32]);
        let (y, _) = layer_norm(&x, &gamma, &beta);
        for r in 0..6 {
            let row = &y.data()[r * 32..(r + 1) * 32];
            let mu: f32 = row.iter().sum::<f32>() / 32.0;
            let var: f32 = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / 32.0;
            assert!(mu.abs() < 1e-4, "row mean {mu}");
            assert!((var - 1.0).abs() < 1e-2, "row var {var}");
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = SplitMix64::new(9);
        let x = Tensor::rand_uniform(&[4, 8], -2.0, 2.0, &mut rng);
        let gamma = Tensor::rand_uniform(&[8], 0.5, 1.5, &mut rng);
        let beta = Tensor::rand_uniform(&[8], -0.5, 0.5, &mut rng);
        let w = Tensor::rand_uniform(&[4, 8], -1.0, 1.0, &mut rng);
        let loss = |x_: &Tensor, g_: &Tensor, b_: &Tensor| {
            layer_norm(x_, g_, b_).0.data().iter().zip(w.data()).map(|(a, b)| a * b).sum::<f32>()
        };
        let (_, saved) = layer_norm(&x, &gamma, &beta);
        let (dx, dg, db) = layer_norm_backward(&x, &gamma, &saved, &w);
        let fdx = crate::check::finite_diff(&x, |t| loss(t, &gamma, &beta));
        let fdg = crate::check::finite_diff(&gamma, |t| loss(&x, t, &beta));
        let fdb = crate::check::finite_diff(&beta, |t| loss(&x, &gamma, t));
        assert!(crate::check::grads_close(&dx, &fdx), "dx");
        assert!(crate::check::grads_close(&dg, &fdg), "dgamma");
        assert!(crate::check::grads_close(&db, &fdb), "dbeta");
    }

    #[test]
    fn saved_stats_are_per_row() {
        let x = Tensor::from_vec(vec![2, 2], vec![0., 2., 10., 14.]).unwrap();
        let gamma = Tensor::full(&[2], 1.0);
        let beta = Tensor::zeros(&[2]);
        let (_, saved) = layer_norm(&x, &gamma, &beta);
        assert!((saved.mean[0] - 1.0).abs() < 1e-6);
        assert!((saved.mean[1] - 12.0).abs() < 1e-6);
    }
}
