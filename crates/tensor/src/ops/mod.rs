//! Forward/backward operator pairs for transformer training.
//!
//! Each operator documents, next to its backward pass, exactly **which
//! tensors must be saved** in the forward pass — these are the "activations"
//! the paper's memory model (Section 4) counts, and the model crate puts each
//! of them on an explicit ledger.

mod activation;
mod dropout;
mod embedding;
mod layernorm;
mod linear;
mod loss;
mod matmul;
mod softmax;

pub use activation::{gelu, gelu_backward};
pub use dropout::{dropout, dropout_backward};
pub use embedding::{embedding, embedding_backward};
pub use layernorm::{layer_norm, layer_norm_backward, LayerNormSaved};
pub use linear::{add_bias, bias_grad, residual_add};
pub use loss::{cross_entropy, CrossEntropyOutput};
pub use matmul::{matmul_backward, Gemm};
pub use softmax::{softmax_rows, softmax_rows_backward};

/// Elementwise/row-wise problems below this many elements run
/// single-threaded regardless of the default backend — thread spawn latency
/// beats the arithmetic. Bit-identical either way, per the kernels'
/// determinism contract.
const PARALLEL_ELEMS_CUTOFF: usize = 64 * 1024;

/// The backend a row-wise/elementwise op should run with: the process
/// default, dropped to serial below [`PARALLEL_ELEMS_CUTOFF`] elements.
fn rowwise_backend(work_elems: usize) -> mt_kernels::Backend {
    match mt_kernels::default_backend() {
        mt_kernels::Backend::Threaded { .. } if work_elems < PARALLEL_ELEMS_CUTOFF => {
            mt_kernels::Backend::Serial
        }
        other => other,
    }
}
