//! Forward/backward operator pairs for transformer training.
//!
//! Each operator documents, next to its backward pass, exactly **which
//! tensors must be saved** in the forward pass — these are the "activations"
//! the paper's memory model (Section 4) counts, and the model crate puts each
//! of them on an explicit ledger.

mod activation;
mod dropout;
mod embedding;
mod layernorm;
mod linear;
mod loss;
mod matmul;
mod softmax;

pub use activation::{gelu, gelu_backward};
pub use dropout::{dropout, dropout_backward};
pub use embedding::{embedding, embedding_backward};
pub use layernorm::{layer_norm, layer_norm_backward, LayerNormSaved};
pub use linear::{add_bias, bias_grad, residual_add};
pub use loss::{cross_entropy, CrossEntropyOutput};
pub use matmul::{matmul, matmul_backward, matmul_nt, matmul_tn};
pub use softmax::{softmax_rows, softmax_rows_backward};
