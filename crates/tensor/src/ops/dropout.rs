//! Inverted dropout with externally supplied (replayable) masks.

use crate::Tensor;

/// Dropout forward with an explicit keep-mask: kept elements are scaled by
/// `1/(1−p)`, dropped elements become zero.
///
/// The mask is a parameter rather than internal state so that callers decide
/// whether it is *stored* (1 byte/element, the paper's `sbh`/`as²b` mask
/// terms) or *regenerated* from a [`CounterRng`](crate::rng::CounterRng)
/// during recomputation.
///
/// # Panics
///
/// Panics if `mask.len() != x.numel()` or `p` is not in `[0, 1)`.
pub fn dropout(x: &Tensor, mask: &[u8], p: f32) -> Tensor {
    assert_eq!(mask.len(), x.numel(), "dropout: mask length mismatch");
    assert!((0.0..1.0).contains(&p), "dropout: p must be in [0,1)");
    if p == 0.0 {
        return x.clone();
    }
    let scale = 1.0 / (1.0 - p);
    let mut out = x.clone();
    for (o, &m) in out.data_mut().iter_mut().zip(mask) {
        *o = if m != 0 { *o * scale } else { 0.0 };
    }
    out
}

/// Backward of [`dropout`]: same mask and scaling applied to `dy`.
///
/// # Panics
///
/// Panics if `mask.len() != dy.numel()` or `p` is not in `[0, 1)`.
pub fn dropout_backward(dy: &Tensor, mask: &[u8], p: f32) -> Tensor {
    dropout(dy, mask, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::CounterRng;

    #[test]
    fn keeps_and_scales_per_mask() {
        let x = Tensor::from_vec(vec![4], vec![1., 2., 3., 4.]).unwrap();
        let mask = vec![1, 0, 1, 0];
        let y = dropout(&x, &mask, 0.5);
        assert_eq!(y.data(), &[2., 0., 6., 0.]);
    }

    #[test]
    fn p_zero_is_identity() {
        let x = Tensor::from_vec(vec![3], vec![1., -2., 3.]).unwrap();
        let y = dropout(&x, &[1, 1, 1], 0.0);
        assert_eq!(y, x);
    }

    #[test]
    fn backward_is_mask_scaled() {
        let dy = Tensor::from_vec(vec![4], vec![1., 1., 1., 1.]).unwrap();
        let mask = vec![0, 1, 1, 0];
        let dx = dropout_backward(&dy, &mask, 0.25);
        let s = 1.0 / 0.75;
        assert!(dx.allclose(&Tensor::from_vec(vec![4], vec![0., s, s, 0.]).unwrap(), 1e-6, 1e-6));
    }

    #[test]
    fn expectation_is_preserved() {
        let rng = CounterRng::new(11);
        let p = 0.1;
        let n = 100_000;
        let x = Tensor::full(&[n], 1.0);
        let mask = rng.dropout_mask(0, n, p);
        let y = dropout(&x, &mask, p);
        let mean = y.sum() / n as f32;
        assert!((mean - 1.0).abs() < 0.01, "dropout mean {mean}");
    }

    #[test]
    fn replayed_mask_reproduces_output() {
        let rng = CounterRng::new(12);
        let x = Tensor::from_fn(&[1000], |i| (i as f32).sin());
        let m1 = rng.dropout_mask(42, 1000, 0.1);
        let m2 = rng.dropout_mask(42, 1000, 0.1);
        assert_eq!(dropout(&x, &m1, 0.1), dropout(&x, &m2, 0.1));
    }
}
