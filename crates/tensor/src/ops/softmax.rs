//! Row-wise softmax and its backward pass, shape-checked wrappers over the
//! `mt-kernels` row kernels.

use crate::Tensor;

/// Row-wise (trailing-axis) numerically-stable softmax, with an optional
/// causal mask.
///
/// With `causal = true` the tensor is interpreted as square score matrices
/// `[…, s, s]` and entries with column > row are masked to `-inf` before the
/// softmax — the standard GPT decoder mask.
///
/// Backward needs the **output saved** — the `2as²b` softmax term in the
/// paper's attention accounting (Section 4.1), and one of the tensors that
/// *selective activation recomputation* chooses to recompute instead of
/// store (Section 5).
///
/// # Panics
///
/// Panics if `causal` is set and the trailing two axes are not square.
pub fn softmax_rows(x: &Tensor, causal: bool) -> Tensor {
    let cols = x.cols();
    if causal {
        assert!(x.rank() >= 2, "causal softmax needs rank >= 2");
        assert_eq!(x.dim(x.rank() - 2), cols, "causal softmax needs square trailing axes");
    }
    let mut out = x.clone();
    let rows = x.rows();
    let backend = super::rowwise_backend(rows * cols);
    mt_kernels::softmax_rows(backend, rows, cols, causal, out.data_mut());
    out
}

/// Backward of [`softmax_rows`]: given saved output `y` and upstream `dy`,
/// returns `dx = y ⊙ (dy − ⟨dy, y⟩_row)`.
///
/// The causal mask needs no special handling: masked positions have `y = 0`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn softmax_rows_backward(y: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(y.shape(), dy.shape(), "softmax_rows_backward: shape mismatch");
    let cols = y.cols();
    let rows = y.rows();
    let mut out = vec![0.0_f32; rows * cols];
    let backend = super::rowwise_backend(rows * cols);
    mt_kernels::softmax_rows_backward(backend, rows, cols, y.data(), dy.data(), &mut out);
    Tensor::from_vec_unchecked(y.shape().to_vec(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_sum_to_one() {
        let mut rng = crate::rng::SplitMix64::new(4);
        let x = Tensor::rand_uniform(&[5, 7], -3.0, 3.0, &mut rng);
        let y = softmax_rows(&x, false);
        for r in 0..5 {
            let s: f32 = y.data()[r * 7..(r + 1) * 7].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn causal_mask_zeroes_future_positions() {
        let mut rng = crate::rng::SplitMix64::new(5);
        let x = Tensor::rand_uniform(&[4, 4], -1.0, 1.0, &mut rng);
        let y = softmax_rows(&x, true);
        for r in 0..4 {
            for c in 0..4 {
                let v = y.at2(r, c);
                if c > r {
                    assert_eq!(v, 0.0, "future position ({r},{c}) not masked");
                } else {
                    assert!(v > 0.0);
                }
            }
            let s: f32 = (0..4).map(|c| y.at2(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn causal_mask_batched_rows_cycle() {
        // Two stacked 3x3 score matrices: rows 3..6 restart the causal mask.
        let x = Tensor::full(&[2, 3, 3], 0.0);
        let y = softmax_rows(&x, true);
        assert_eq!(y.data()[3 * 3], 1.0, "row 0 of second matrix attends only to col 0");
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = crate::rng::SplitMix64::new(6);
        let x = Tensor::rand_uniform(&[3, 5], -1.0, 1.0, &mut rng);
        // A non-uniform downstream loss so the Jacobian structure matters.
        let weights = Tensor::rand_uniform(&[3, 5], 0.0, 1.0, &mut rng);
        let loss = |t: &Tensor| {
            softmax_rows(t, false)
                .data()
                .iter()
                .zip(weights.data())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let y = softmax_rows(&x, false);
        let dx = softmax_rows_backward(&y, &weights);
        let fd = crate::check::finite_diff(&x, loss);
        assert!(crate::check::grads_close(&dx, &fd));
    }

    #[test]
    fn backward_matches_finite_difference_causal() {
        let mut rng = crate::rng::SplitMix64::new(7);
        let x = Tensor::rand_uniform(&[4, 4], -1.0, 1.0, &mut rng);
        let weights = Tensor::rand_uniform(&[4, 4], 0.0, 1.0, &mut rng);
        let loss = |t: &Tensor| {
            softmax_rows(t, true).data().iter().zip(weights.data()).map(|(a, b)| a * b).sum::<f32>()
        };
        let y = softmax_rows(&x, true);
        let dx = softmax_rows_backward(&y, &weights);
        let fd = crate::check::finite_diff(&x, loss);
        assert!(crate::check::grads_close(&dx, &fd));
    }
}
