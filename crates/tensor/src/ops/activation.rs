//! GeLU non-linearity (tanh approximation, as used by GPT models) —
//! shape-checked wrappers over the `mt-kernels` elementwise kernels.

use crate::Tensor;

/// GeLU forward: `0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`.
///
/// Backward needs the **input saved** — this is the `8sbh` GeLU term in the
/// paper's MLP accounting (Section 4.1), since the GeLU input lives in the
/// widened `4h` space.
pub fn gelu(x: &Tensor) -> Tensor {
    let mut out = x.clone();
    let backend = super::rowwise_backend(x.numel());
    mt_kernels::gelu(backend, x.data(), out.data_mut());
    out
}

/// Backward of [`gelu`]: given saved input `x` and upstream `dy`, returns
/// `dx`.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn gelu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(x.shape(), dy.shape(), "gelu_backward: shape mismatch");
    let mut out = x.clone();
    let backend = super::rowwise_backend(x.numel());
    mt_kernels::gelu_backward(backend, x.data(), dy.data(), out.data_mut());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gelu_known_values() {
        let x = Tensor::from_vec(vec![3], vec![-1.0, 0.0, 1.0]).unwrap();
        let y = gelu(&x);
        assert!(y.data()[1].abs() < 1e-7);
        assert!((y.data()[2] - 0.841_192).abs() < 1e-3);
        assert!((y.data()[0] + 0.158_808).abs() < 1e-3);
    }

    #[test]
    fn gelu_backward_matches_finite_difference() {
        let mut rng = crate::rng::SplitMix64::new(3);
        let x = Tensor::rand_uniform(&[4, 5], -2.0, 2.0, &mut rng);
        let dy = Tensor::full(&[4, 5], 1.0);
        let dx = gelu_backward(&x, &dy);
        let fd = crate::check::finite_diff(&x, |t| gelu(t).sum());
        assert!(crate::check::grads_close(&dx, &fd));
    }

    #[test]
    fn gelu_is_monotone_on_positives() {
        let x = Tensor::from_fn(&[100], |i| i as f32 * 0.1);
        let y = gelu(&x);
        for w in y.data().windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}
