//! Bias / residual helpers around the linear layers.

use crate::Tensor;

/// Adds a bias row-broadcast: `y[r, :] = x[r, :] + b`.
///
/// The bias backward (`db = Σ_r dy[r, :]`, see [`bias_grad`]) needs nothing
/// saved, which is why biases never appear in the paper's activation
/// accounting.
///
/// # Panics
///
/// Panics if `bias.numel()` differs from the trailing axis of `x`.
pub fn add_bias(x: &Tensor, bias: &Tensor) -> Tensor {
    let cols = x.cols();
    assert_eq!(bias.numel(), cols, "add_bias: bias length mismatch");
    let mut out = x.clone();
    let b = bias.data();
    for r in 0..x.rows() {
        let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
        for (o, &bv) in row.iter_mut().zip(b) {
            *o += bv;
        }
    }
    out
}

/// Bias gradient: column sums of the upstream gradient.
pub fn bias_grad(dy: &Tensor) -> Tensor {
    let cols = dy.cols();
    let mut out = Tensor::zeros(&[cols]);
    for r in 0..dy.rows() {
        let row = &dy.data()[r * cols..(r + 1) * cols];
        for (o, &v) in out.data_mut().iter_mut().zip(row) {
            *o += v;
        }
    }
    out
}

/// Residual connection: `y = x + r`. Backward is the identity on both
/// branches, so nothing is saved.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn residual_add(x: &Tensor, r: &Tensor) -> Tensor {
    x.add(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_broadcasts_rows() {
        let x = Tensor::from_fn(&[2, 3], |i| i as f32);
        let b = Tensor::from_vec(vec![3], vec![10., 20., 30.]).unwrap();
        let y = add_bias(&x, &b);
        assert_eq!(y.data(), &[10., 21., 32., 13., 24., 35.]);
    }

    #[test]
    fn bias_grad_sums_columns() {
        let dy = Tensor::from_fn(&[3, 2], |i| i as f32);
        let db = bias_grad(&dy);
        assert_eq!(db.data(), &[0. + 2. + 4., 1. + 3. + 5.]);
    }

    #[test]
    fn bias_grad_matches_finite_difference() {
        let mut rng = crate::rng::SplitMix64::new(13);
        let x = Tensor::rand_uniform(&[4, 3], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[3], -1.0, 1.0, &mut rng);
        let db = bias_grad(&Tensor::full(&[4, 3], 1.0));
        let fd = crate::check::finite_diff(&b, |t| add_bias(&x, t).sum());
        assert!(crate::check::grads_close(&db, &fd));
    }
}
