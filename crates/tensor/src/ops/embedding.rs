//! Embedding-table gather and scatter-add backward.

use crate::Tensor;

/// Embedding lookup: for each id, copies the corresponding row of the
/// `[vocab, hidden]` table, producing `[ids.len(), hidden]`.
///
/// Backward ([`embedding_backward`]) needs only the integer **ids** saved —
/// which is why the paper notes the embedding itself contributes no
/// meaningful activation memory (Section 4.3); only its trailing dropout
/// does.
///
/// # Panics
///
/// Panics if any id is out of range for the table.
pub fn embedding(ids: &[usize], table: &Tensor) -> Tensor {
    assert_eq!(table.rank(), 2, "embedding: table must be [vocab, hidden]");
    let (v, h) = (table.dim(0), table.dim(1));
    let mut out = Tensor::zeros(&[ids.len(), h]);
    for (r, &id) in ids.iter().enumerate() {
        assert!(id < v, "embedding: id {id} out of range (vocab {v})");
        out.data_mut()[r * h..(r + 1) * h].copy_from_slice(&table.data()[id * h..(id + 1) * h]);
    }
    out
}

/// Backward of [`embedding`]: scatter-adds each upstream gradient row into
/// the gradient of the table.
///
/// # Panics
///
/// Panics if `dy` rows differ from `ids.len()` or an id exceeds `vocab`.
pub fn embedding_backward(ids: &[usize], dy: &Tensor, vocab: usize) -> Tensor {
    assert_eq!(dy.rows(), ids.len(), "embedding_backward: row mismatch");
    let h = dy.cols();
    let mut dtable = Tensor::zeros(&[vocab, h]);
    for (r, &id) in ids.iter().enumerate() {
        assert!(id < vocab, "embedding_backward: id {id} out of range");
        let src = &dy.data()[r * h..(r + 1) * h];
        let dst = &mut dtable.data_mut()[id * h..(id + 1) * h];
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }
    dtable
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_copies_rows() {
        let table = Tensor::from_fn(&[4, 2], |i| i as f32);
        let out = embedding(&[2, 0, 2], &table);
        assert_eq!(out.data(), &[4., 5., 0., 1., 4., 5.]);
    }

    #[test]
    fn backward_accumulates_repeated_ids() {
        let dy = Tensor::full(&[3, 2], 1.0);
        let dt = embedding_backward(&[2, 0, 2], &dy, 4);
        assert_eq!(dt.data(), &[1., 1., 0., 0., 2., 2., 0., 0.]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_ids() {
        let table = Tensor::zeros(&[4, 2]);
        let _ = embedding(&[5], &table);
    }
}
