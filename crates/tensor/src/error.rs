//! Error types for tensor construction and reshaping.

use std::fmt;

/// Errors returned by fallible [`Tensor`](crate::Tensor) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The data length does not match the product of the requested shape.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        got: usize,
    },
    /// A reshape was requested to a shape with a different element count.
    ReshapeMismatch {
        /// Source shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
    /// An axis split was requested that does not divide the axis evenly.
    UnevenSplit {
        /// Axis length being split.
        axis_len: usize,
        /// Number of requested parts.
        parts: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, got } => {
                write!(f, "data length {got} does not match shape volume {expected}")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(f, "cannot reshape {from:?} into {to:?}: element counts differ")
            }
            TensorError::UnevenSplit { axis_len, parts } => {
                write!(f, "axis of length {axis_len} cannot be split into {parts} equal parts")
            }
        }
    }
}

impl std::error::Error for TensorError {}
