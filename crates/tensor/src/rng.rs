//! Deterministic random number generation.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny sequential PRNG used for weight initialization
//!   and test-data generation.
//! * [`CounterRng`] — a *counter-based* (stateless) PRNG used for dropout
//!   masks. Counter-based generation is what makes zero-storage activation
//!   recomputation possible: instead of saving a dropout mask (1 byte per
//!   element, per the paper's accounting) or a mutable RNG state, the mask
//!   element `i` of op-instance `stream` is a pure function of
//!   `(seed, stream, i)`. A recompute pass calls the same function and gets a
//!   bit-identical mask — the same mechanism as Megatron-LM's CUDA RNG state
//!   replay, expressed functionally.

use serde::{Deserialize, Serialize};

/// Sequential PRNG (Steele et al.'s SplitMix64).
///
/// ```
/// use mt_tensor::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

/// The SplitMix64 output mixing function.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        mix(self.state)
    }

    /// Next `f32` uniform in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // 24 high-quality mantissa bits.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Next standard Gaussian via Box–Muller.
    pub fn next_gaussian(&mut self) -> f32 {
        // Avoid log(0).
        let u1 = (self.next_f32() + f32::EPSILON).min(1.0 - f32::EPSILON);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Derives an independent child generator; useful for giving each rank
    /// or each layer its own stream.
    pub fn fork(&mut self, tag: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ mix(tag))
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x0005_eed0_fca5_cade)
    }
}

/// Counter-based (stateless) PRNG for replayable dropout masks.
///
/// Every draw is a pure function of `(seed, stream, offset)`, so dropout
/// masks never need to be *stored* to be recomputed — only the cheap triple
/// identifying them does. `stream` identifies the op instance (e.g. "layer 3,
/// attention-dropout") and `offset` the element index.
///
/// ```
/// use mt_tensor::rng::CounterRng;
/// let rng = CounterRng::new(7);
/// // Same coordinates, same value — regardless of call order.
/// assert_eq!(rng.uniform(3, 100), rng.uniform(3, 100));
/// assert_ne!(rng.uniform(3, 100), rng.uniform(4, 100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterRng {
    seed: u64,
}

impl CounterRng {
    /// Creates a counter RNG with the given seed.
    pub fn new(seed: u64) -> Self {
        CounterRng { seed }
    }

    /// The seed this generator was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Raw 64-bit output at coordinates `(stream, offset)`.
    #[inline]
    pub fn raw(&self, stream: u64, offset: u64) -> u64 {
        // Two rounds of mixing over a combined counter; this is not crypto,
        // it only needs to decorrelate neighbouring coordinates.
        let a = mix(self.seed ^ mix(stream.wrapping_mul(0xd1342543de82ef95)));
        mix(a ^ offset.wrapping_mul(0x2545f4914f6cdd1d))
    }

    /// Uniform `f32` in `[0, 1)` at coordinates `(stream, offset)`.
    #[inline]
    pub fn uniform(&self, stream: u64, offset: u64) -> f32 {
        (self.raw(stream, offset) >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Generates a keep/drop mask of `len` bytes with drop probability `p`.
    ///
    /// `mask[i] == 1` means the element is kept. The result is a pure
    /// function of `(seed, stream, i, p)` and can therefore be regenerated
    /// during recomputation instead of being stored.
    pub fn dropout_mask(&self, stream: u64, len: usize, p: f32) -> Vec<u8> {
        (0..len).map(|i| u8::from(self.uniform(stream, i as u64) >= p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniform_ish() {
        let mut r = SplitMix64::new(1);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let v = r.next_f32();
            assert!((0.0..1.0).contains(&v));
            sum += v as f64;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SplitMix64::new(2);
        const N: usize = 20_000;
        let samples: Vec<f32> = (0..N).map(|_| r.next_gaussian()).collect();
        let mean: f64 = samples.iter().map(|&v| v as f64).sum::<f64>() / N as f64;
        let var: f64 = samples.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / N as f64;
        assert!(mean.abs() < 0.03, "gaussian mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "gaussian var {var}");
    }

    #[test]
    fn fork_decorrelates() {
        let mut r = SplitMix64::new(3);
        let mut a = r.fork(0);
        let mut b = r.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn counter_rng_is_replayable() {
        let rng = CounterRng::new(99);
        let m1 = rng.dropout_mask(5, 1000, 0.1);
        let m2 = rng.dropout_mask(5, 1000, 0.1);
        assert_eq!(m1, m2, "identical coordinates must give identical masks");
        let m3 = rng.dropout_mask(6, 1000, 0.1);
        assert_ne!(m1, m3, "different streams must give different masks");
    }

    #[test]
    fn dropout_mask_rate_close_to_p() {
        let rng = CounterRng::new(7);
        let p = 0.1;
        let mask = rng.dropout_mask(0, 100_000, p);
        let dropped = mask.iter().filter(|&&m| m == 0).count() as f32 / mask.len() as f32;
        assert!((dropped - p).abs() < 0.01, "drop rate {dropped} vs p {p}");
    }

    #[test]
    fn dropout_mask_p_zero_keeps_everything() {
        let rng = CounterRng::new(7);
        assert!(rng.dropout_mask(0, 1000, 0.0).iter().all(|&m| m == 1));
    }
}
