//! Numerical gradient checking helpers used throughout the workspace's test
//! suites.

use crate::Tensor;

/// Central-difference numerical gradient of a scalar function `f` at `x`.
///
/// Each element is perturbed by ±`1e-2` (a relatively large step — `f32`
/// arithmetic makes smaller steps noisier, and the ops under test are smooth).
pub fn finite_diff(x: &Tensor, mut f: impl FnMut(&Tensor) -> f32) -> Tensor {
    const EPS: f32 = 1e-2;
    let mut grad = Tensor::zeros(x.shape());
    let mut probe = x.clone();
    for i in 0..x.numel() {
        let orig = probe.data()[i];
        probe.data_mut()[i] = orig + EPS;
        let up = f(&probe);
        probe.data_mut()[i] = orig - EPS;
        let down = f(&probe);
        probe.data_mut()[i] = orig;
        grad.data_mut()[i] = (up - down) / (2.0 * EPS);
    }
    grad
}

/// Whether an analytic gradient matches a finite-difference gradient.
///
/// Uses a combined criterion: cosine similarity above 0.999 **and** max
/// absolute deviation below `0.05 · (1 + max|fd|)`. Cosine similarity is
/// robust to the uniform noise floor of `f32` central differences while the
/// absolute bound catches systematically wrong scales.
pub fn grads_close(analytic: &Tensor, fd: &Tensor) -> bool {
    assert_eq!(analytic.shape(), fd.shape(), "grads_close: shape mismatch");
    let (a, b) = (analytic.data(), fd.data());
    let dot: f64 = a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum();
    let na: f64 = a.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt();
    if na < 1e-9 && nb < 1e-9 {
        return true; // both zero
    }
    let cos = dot / (na * nb + 1e-30);
    let max_dev = analytic.max_abs_diff(fd);
    let tol = 0.05 * (1.0 + fd.max_abs());
    cos > 0.999 && max_dev < tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_diff_of_quadratic() {
        // f(x) = sum(x^2) => grad = 2x
        let x = Tensor::from_vec(vec![3], vec![1.0, -2.0, 0.5]).unwrap();
        let fd = finite_diff(&x, |t| t.data().iter().map(|v| v * v).sum());
        let exact = x.scale(2.0);
        assert!(grads_close(&exact, &fd));
    }

    #[test]
    fn grads_close_rejects_wrong_scale() {
        let x = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let wrong = x.scale(5.0);
        assert!(!grads_close(&wrong, &x));
    }

    #[test]
    fn grads_close_accepts_zero_grads() {
        let z = Tensor::zeros(&[4]);
        assert!(grads_close(&z, &z));
    }
}
