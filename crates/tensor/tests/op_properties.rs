//! Property-based tests on the tensor operators: the algebraic identities
//! the transformer's correctness rests on must hold for arbitrary shapes and
//! values, not just the unit-test fixtures.

use mt_tensor::ops;
use mt_tensor::rng::{CounterRng, SplitMix64};
use mt_tensor::Tensor;
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(vec![rows, cols], data).expect("sized"))
}

proptest! {
    /// A · I = A and I · A = A.
    #[test]
    fn matmul_identity(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = SplitMix64::new(seed);
        let a = Tensor::rand_uniform(&[rows, cols], -2.0, 2.0, &mut rng);
        let id_r = Tensor::from_fn(&[cols, cols], |i| if i / cols == i % cols { 1.0 } else { 0.0 });
        let id_l = Tensor::from_fn(&[rows, rows], |i| if i / rows == i % rows { 1.0 } else { 0.0 });
        prop_assert!(ops::Gemm::NN.apply(&a, &id_r).allclose(&a, 1e-5, 1e-6));
        prop_assert!(ops::Gemm::NN.apply(&id_l, &a).allclose(&a, 1e-5, 1e-6));
    }

    /// (A + B) · C = A·C + B·C.
    #[test]
    fn matmul_distributes_over_add(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(3, 4),
        c in tensor_strategy(4, 2),
    ) {
        let lhs = ops::Gemm::NN.apply(&a.add(&b), &c);
        let rhs = ops::Gemm::NN.apply(&a, &c).add(&ops::Gemm::NN.apply(&b, &c));
        prop_assert!(lhs.allclose(&rhs, 1e-4, 1e-4));
    }

    /// Gemm::NT == A · Bᵀ and Gemm::TN == Aᵀ · B, vs explicit transposes.
    #[test]
    fn transposed_gemms_match_explicit(
        a in tensor_strategy(3, 5),
        b in tensor_strategy(4, 5),
    ) {
        let nt = ops::Gemm::NT.apply(&a, &b);
        prop_assert!(nt.allclose(&ops::Gemm::NN.apply(&a, &b.transpose2()), 1e-4, 1e-5));
        let c = b.transpose2(); // [5, 4]
        let tn = ops::Gemm::TN.apply(&a.transpose2(), &c);
        let explicit = ops::Gemm::NN.apply(&a, &c);
        prop_assert!(tn.allclose(&explicit, 1e-4, 1e-5));
    }

    /// softmax(x + c·1) == softmax(x): translation invariance per row.
    #[test]
    fn softmax_translation_invariance(x in tensor_strategy(4, 6), shift in -5.0f32..5.0) {
        let a = ops::softmax_rows(&x, false);
        let b = ops::softmax_rows(&x.map(|v| v + shift), false);
        prop_assert!(a.allclose(&b, 1e-4, 1e-5));
    }

    /// Softmax rows are probability distributions.
    #[test]
    fn softmax_rows_are_distributions(x in tensor_strategy(5, 7)) {
        let y = ops::softmax_rows(&x, false);
        for r in 0..5 {
            let row = &y.data()[r * 7..(r + 1) * 7];
            prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
        }
    }

    /// LayerNorm (unit affine) is invariant to per-row shift and positive
    /// scale of its input.
    #[test]
    fn layer_norm_shift_scale_invariance(
        x in tensor_strategy(3, 8),
        shift in -4.0f32..4.0,
        scale in 0.25f32..4.0,
    ) {
        let gamma = Tensor::full(&[8], 1.0);
        let beta = Tensor::zeros(&[8]);
        let (a, _) = ops::layer_norm(&x, &gamma, &beta);
        let (b, _) = ops::layer_norm(&x.map(|v| scale * v + shift), &gamma, &beta);
        prop_assert!(a.allclose(&b, 2e-3, 2e-3), "max diff {}", a.max_abs_diff(&b));
    }

    /// GeLU is bounded by the identity on positives and by zero from above
    /// on large negatives; always between x and relu(x) up to its known dip.
    #[test]
    fn gelu_bounds(x in tensor_strategy(2, 16)) {
        let y = ops::gelu(&x);
        for (&xi, &yi) in x.data().iter().zip(y.data()) {
            prop_assert!(yi <= xi.max(0.0) + 1e-5, "gelu({xi}) = {yi}");
            prop_assert!(yi >= xi.min(0.0) - 1e-5, "gelu({xi}) = {yi}");
        }
    }

    /// Dropout backward is the same linear map as forward: for any x and dy,
    /// <dropout(x), dy> == <x, dropout_backward(dy)>.
    #[test]
    fn dropout_is_self_adjoint(
        x in tensor_strategy(3, 10),
        dy in tensor_strategy(3, 10),
        p in 0.0f32..0.9,
        stream in 0u64..100,
    ) {
        let rng = CounterRng::new(7);
        let mask = rng.dropout_mask(stream, 30, p);
        let fwd = ops::dropout(&x, &mask, p);
        let bwd = ops::dropout_backward(&dy, &mask, p);
        let lhs: f32 = fwd.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(bwd.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()));
    }

    /// Embedding backward conserves gradient mass: the table gradient sums
    /// to the upstream gradient's sum.
    #[test]
    fn embedding_backward_conserves_mass(
        ids in proptest::collection::vec(0usize..8, 1..12),
        seed in 0u64..1000,
    ) {
        let mut rng = SplitMix64::new(seed);
        let dy = Tensor::rand_uniform(&[ids.len(), 4], -1.0, 1.0, &mut rng);
        let dtable = ops::embedding_backward(&ids, &dy, 8);
        prop_assert!((dtable.sum() - dy.sum()).abs() < 1e-4);
    }

    /// Cross-entropy loss is non-negative and its gradient rows sum to zero.
    #[test]
    fn cross_entropy_invariants(
        logits in tensor_strategy(4, 9),
        t0 in 0usize..9, t1 in 0usize..9, t2 in 0usize..9, t3 in 0usize..9,
    ) {
        let targets = [t0, t1, t2, t3];
        let out = ops::cross_entropy(&logits, &targets);
        prop_assert!(out.loss >= -1e-6);
        for r in 0..4 {
            let s: f32 = out.dlogits.data()[r * 9..(r + 1) * 9].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    /// chunk/concat roundtrips along both axes.
    #[test]
    fn chunk_concat_roundtrip(
        parts in 1usize..5,
        rows_per in 1usize..4,
        cols_per in 1usize..4,
        seed in 0u64..1000,
    ) {
        let mut rng = SplitMix64::new(seed);
        let t = Tensor::rand_uniform(&[parts * rows_per, parts * cols_per], -1.0, 1.0, &mut rng);
        let axis0 = Tensor::concat_axis0(&t.chunk_axis0(parts).unwrap());
        prop_assert_eq!(&axis0, &t);
        let last = Tensor::concat_last_axis(&t.chunk_last_axis(parts).unwrap());
        prop_assert_eq!(&last, &t);
    }

    /// Bias-add then bias-grad recovers a row-count multiple.
    #[test]
    fn bias_grad_of_ones_is_row_count(rows in 1usize..8, cols in 1usize..8) {
        let dy = Tensor::full(&[rows, cols], 1.0);
        let db = ops::bias_grad(&dy);
        prop_assert!(db.data().iter().all(|&v| (v - rows as f32).abs() < 1e-6));
    }
}
