//! The static half of the elastic re-formation proof: the schedule a
//! re-formed world runs at epoch `e+1` is tag-for-tag identical to a fresh
//! world of the same degree — only the epoch coordinate of each tag
//! differs — and a straggler still replaying the old epoch is caught
//! statically as an `SpmdMismatch`, the same fault the runtime raises.
//!
//! Together with `crates/elastic/tests/elastic.rs` (which proves the
//! *numerics* of a recovered run bit-identical to a planned-resize
//! control), this pins the claim that re-formation changes a schedule's
//! identity coordinate and nothing else.

use mt_analyze::{
    check_schedule, layer_program, layer_program_at_epoch, Program, ScheduleFault, ScheduleOp,
};
use mt_memory::Recompute;
use mt_model::{OverlapPolicy, TransformerConfig};

fn cfg() -> TransformerConfig {
    TransformerConfig {
        hidden: 16,
        heads: 4,
        seq: 8,
        micro_batch: 2,
        layers: 2,
        vocab: 24,
        dropout_p: 0.1,
        causal: true,
    }
}

/// Strips the epoch coordinate from every collective tag, leaving the
/// structural schedule.
fn at_epoch_zero(mut p: Program) -> Program {
    for rank in &mut p.ranks {
        for op in &mut rank.ops {
            if let ScheduleOp::Collective { tag, .. } = op {
                tag.epoch = 0;
            }
        }
    }
    p
}

/// The re-formed world's program is the fresh program with every tag's
/// epoch rewritten — op for op, across degrees, policies, and overlap
/// shapes a reform can land on.
#[test]
fn reformed_schedule_is_a_fresh_schedule_with_the_epoch_rewritten() {
    let c = cfg();
    for t in [1usize, 2, 4] {
        for sp in [false, true] {
            for policy in [Recompute::None, Recompute::Selective, Recompute::Full] {
                for overlap in [OverlapPolicy::Exposed, OverlapPolicy::Overlapped { chunks: 2 }] {
                    let fresh = layer_program(&c, t, sp, policy, overlap);
                    let reformed = layer_program_at_epoch(&c, t, sp, policy, overlap, 3);
                    // Every collective carries the new formation's epoch…
                    for rank in &reformed.ranks {
                        for op in &rank.ops {
                            if let ScheduleOp::Collective { tag, .. } = op {
                                assert_eq!(
                                    tag.epoch, 3,
                                    "t={t} sp={sp}: a reformed op kept a stale epoch"
                                );
                            }
                        }
                    }
                    // …and removing that coordinate recovers the fresh
                    // program exactly, op for op.
                    assert_eq!(
                        at_epoch_zero(reformed),
                        fresh,
                        "t={t} sp={sp} {policy:?} {overlap:?}: reform changed schedule structure"
                    );
                }
            }
        }
    }
}

/// A re-formed schedule is self-consistent: every rank of the new
/// formation agrees on every round, so the static matcher passes it just
/// as it passes a fresh one.
#[test]
fn reformed_schedule_passes_the_static_matcher() {
    let c = cfg();
    for epoch in [1u64, 2, 7] {
        let prog = layer_program_at_epoch(
            &c,
            2,
            true,
            Recompute::Selective,
            OverlapPolicy::Overlapped { chunks: 2 },
            epoch,
        );
        check_schedule(&prog).expect("re-formed schedule is SPMD-consistent");
    }
}

/// A straggler that re-joins while still replaying the *old* epoch is a
/// static `SpmdMismatch` whose tags differ only in the epoch coordinate —
/// the analyzer's image of the runtime fence that keeps cross-epoch
/// rendezvous from deadlocking or mixing data.
#[test]
fn cross_epoch_straggler_is_a_static_spmd_mismatch() {
    let c = cfg();
    let new = layer_program_at_epoch(&c, 2, true, Recompute::Selective, OverlapPolicy::Exposed, 2);
    let old = layer_program_at_epoch(&c, 2, true, Recompute::Selective, OverlapPolicy::Exposed, 1);

    let mut mixed = new.clone();
    mixed.ranks[1] = old.ranks[1].clone();
    let fault = check_schedule(&mixed).expect_err("stale-epoch rank must be fenced out");
    match fault {
        ScheduleFault::SpmdMismatch { expected, found, .. } => {
            assert_ne!(expected.epoch, found.epoch, "the mismatch is the epoch itself");
            assert_eq!(expected.op, found.op, "same op either side — only the epoch diverged");
        }
        other => panic!("expected SpmdMismatch, got {other:?}"),
    }
}
