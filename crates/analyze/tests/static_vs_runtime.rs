//! The analyzer's core soundness claim: on every configuration small enough
//! to *execute*, the static programs agree with the running system —
//! activation ledger, communication stats, and iteration peak — and both
//! sides agree on what is broken (a mistagged collective is flagged
//! statically and fails at runtime as `SpmdMismatch`).
//!
//! At paper scale, where nothing can run, `analyze-zoo` checks the same
//! static quantities against the Table 2 closed forms instead; these tests
//! are what entitles it to speak for the runtime.

use mt_analyze::{
    analyze_liveness, analyze_rank_liveness, check_schedule, layer_forward_program, layer_program,
    pipeline_1f1b_program, rank_comm_stats, GroupId, Program, RankProgram, ScheduleFault,
    ScheduleOp,
};
use mt_collectives::{run_grid, CallTag, CollectiveError, CollectiveKind, CommStats, World};
use mt_memory::{ActivationMemoryModel, Recompute, Strategy};
use mt_model::gpt::Gpt;
use mt_model::pipeline_exec::{run_1f1b_iteration, StageModel};
use mt_model::weights::LayerWeights;
use mt_model::{
    ActivationLedger, Category, ExecMode, ExecPolicy, OverlapPolicy, TransformerConfig,
    TransformerLayer,
};
use mt_tensor::rng::{CounterRng, SplitMix64};
use mt_tensor::Tensor;
use proptest::prelude::*;
use std::time::Duration;

const POLICIES: [Recompute; 3] = [Recompute::None, Recompute::Selective, Recompute::Full];

/// Runs one layer forward + backward on `t` ranks and returns each rank's
/// (cumulative ledger, comm stats).
fn runtime_layer(
    cfg: TransformerConfig,
    t: usize,
    sp: bool,
    policy: Recompute,
    overlap: OverlapPolicy,
) -> Vec<(ActivationLedger, CommStats)> {
    let mut rng = SplitMix64::new(7);
    let full = LayerWeights::init(&cfg, &mut rng);
    let x = Tensor::rand_uniform(&[cfg.tokens(), cfg.hidden], -1.0, 1.0, &mut rng);
    if t == 1 {
        let layer = TransformerLayer::new(cfg, full, 0, policy, CounterRng::new(3));
        let exec = ExecPolicy::builder()
            .backend(ExecMode::Serial)
            .overlap(overlap)
            .build()
            .expect("valid overlap policy");
        let mut ledger = ActivationLedger::new();
        let (y, state) = layer.forward(&x, 0, exec, &mut ledger);
        let _ = layer.backward(&y, state, exec);
        vec![(ledger, CommStats::new())]
    } else {
        World::run(t, |comm| {
            let layer = TransformerLayer::new(
                cfg,
                full.shard(t, comm.rank()),
                0,
                policy,
                CounterRng::new(3),
            );
            let mode = if sp {
                ExecMode::TensorSequenceParallel(&comm)
            } else {
                ExecMode::TensorParallel(&comm)
            };
            let exec = ExecPolicy::builder()
                .backend(mode)
                .overlap(overlap)
                .build()
                .expect("valid overlap policy");
            let x_local =
                if sp { x.chunk_axis0(t).unwrap()[comm.rank()].clone() } else { x.clone() };
            let mut ledger = ActivationLedger::new();
            let (y, state) = layer.forward(&x_local, 0, exec, &mut ledger);
            let _ = layer.backward(&y, state, exec);
            (ledger, comm.stats())
        })
    }
}

/// Per-category element counts, for comparing a record-only runtime ledger
/// with the static cumulative ledger (their live sets differ by design:
/// the static replay frees what the backward consumes).
fn elements(ledger: &ActivationLedger) -> Vec<(Category, u64)> {
    ledger.iter().filter(|(_, e)| *e > 0).collect()
}

/// One config × mode × policy cell of the agreement matrix.
fn assert_layer_agreement(cfg: TransformerConfig, t: usize, sp: bool, policy: Recompute) {
    assert_layer_agreement_overlap(cfg, t, sp, policy, OverlapPolicy::Exposed);
}

/// Same agreement matrix, parameterized over the overlap policy: the
/// chunked collective sequence the overlapped runtime emits must match the
/// static program call for call (tags carry the chunk coordinates) and
/// byte for byte.
fn assert_layer_agreement_overlap(
    cfg: TransformerConfig,
    t: usize,
    sp: bool,
    policy: Recompute,
    overlap: OverlapPolicy,
) {
    let what = format!("cfg {cfg:?} t={t} sp={sp} policy={policy:?} overlap={overlap:?}");
    let prog = layer_program(&cfg, t, sp, policy, overlap);
    assert_eq!(check_schedule(&prog), Ok(()), "{what}: static matching");
    let runtime = runtime_layer(cfg, t, sp, policy, overlap);
    for (rank, (rt_ledger, rt_stats)) in runtime.iter().enumerate() {
        let report = analyze_rank_liveness(&prog.ranks[rank]).expect("static liveness");
        // Same stored tensors, category by category.
        assert_eq!(elements(&report.ledger), elements(rt_ledger), "{what}: rank {rank} ledger");
        // Same peak: the runtime ledger is record-only, so its high water is
        // its cumulative total — which the static replay (allocs first, all
        // frees at the end) reproduces exactly.
        assert_eq!(report.peak_bytes, rt_ledger.high_water(), "{what}: rank {rank} peak");
        assert_eq!(report.live_end_bytes, 0, "{what}: rank {rank} leak-free");
        // Same communication, call for call and byte for byte.
        assert_eq!(
            &rank_comm_stats(&prog.ranks[rank], &prog),
            rt_stats,
            "{what}: rank {rank} comm stats"
        );
        // And the paper's closed form agrees with both.
        let analytical =
            ActivationMemoryModel::new(cfg.to_shape(), cfg.micro_batch as u64, t as u64)
                .per_layer_bytes(Strategy { sequence_parallel: sp, recompute: policy });
        assert_eq!(report.ledger.paper_bytes() as f64, analytical, "{what}: Table 2");
    }
}

#[test]
fn layer_static_matches_runtime_across_the_matrix() {
    let configs = [
        TransformerConfig::tiny(),
        TransformerConfig {
            hidden: 48,
            heads: 6,
            seq: 6,
            micro_batch: 3,
            layers: 1,
            vocab: 32,
            dropout_p: 0.0,
            causal: false,
        },
    ];
    for cfg in configs {
        for t in [1usize, 2, 4] {
            if cfg.heads % t != 0 || cfg.seq % t != 0 {
                continue;
            }
            for sp in [false, true] {
                if sp && t == 1 {
                    continue;
                }
                for policy in POLICIES {
                    assert_layer_agreement(cfg, t, sp, policy);
                }
            }
        }
    }
}

/// Chunked collectives (PR 5's overlap tentpole) and the recompute-prefetch
/// policy on top of them: for every chunk count — including ragged
/// partitions and chunks exceeding the shard rows — the overlapped
/// runtime's collective ledger matches the static program, and the static
/// matcher proves the chunked schedule deadlock-free. `OverlappedRecompute`
/// runs the same matrix: its prefetched replay is collective-free, so the
/// interleaved backward+recompute schedule must agree with the static
/// program tag for tag (the split backward halves preserve the collective
/// order) and leave the liveness proof intact. The TP (non-SP) rows check
/// that both policies are wire no-ops outside sequence parallelism.
#[test]
fn overlapped_layer_static_matches_runtime_across_chunk_counts() {
    let cfg = TransformerConfig::tiny();
    for chunks in [1usize, 2, 3, 7] {
        for overlap in
            [OverlapPolicy::Overlapped { chunks }, OverlapPolicy::OverlappedRecompute { chunks }]
        {
            for policy in POLICIES {
                assert_layer_agreement_overlap(cfg, 2, true, policy, overlap);
            }
            assert_layer_agreement_overlap(cfg, 2, false, Recompute::None, overlap);
        }
    }
}

/// A dropped chunk sub-rendezvous is caught by both detectors. Statically:
/// removing one rank's final reduce-scatter chunk from the overlapped
/// program leaves the peer blocked in a round whose tag names the chunk
/// coordinate — a [`ScheduleFault::Deadlock`]. At runtime: a rank that
/// skips its last chunk (but stays alive) strands the peer until its
/// rendezvous deadline fires as [`CollectiveError::Timeout`].
#[test]
fn dropped_chunk_deadlocks_statically_and_times_out_at_runtime() {
    let cfg = TransformerConfig::tiny();
    let chunks = 4usize;
    // The recompute-prefetch variant shares the chunked wire schedule, so
    // the deadlock proof covers it too.
    let overlap = OverlapPolicy::OverlappedRecompute { chunks };
    let mut prog = layer_forward_program(&cfg, 2, true, Recompute::None, overlap);
    assert_eq!(check_schedule(&prog), Ok(()), "intact chunked program is deadlock-free");
    let ops = &mut prog.ranks[1].ops;
    let last = ops
        .iter()
        .rposition(|op| matches!(op, ScheduleOp::Collective { .. }))
        .expect("program has collectives");
    ops.remove(last);
    match check_schedule(&prog) {
        Err(ScheduleFault::Deadlock { blocked }) => {
            assert_eq!(blocked.len(), 1, "only the stranded peer blocks");
            assert_eq!(blocked[0].0, 0);
            assert!(
                blocked[0].1.contains("chunk=3/4"),
                "wait description names the chunk: {}",
                blocked[0].1
            );
        }
        other => panic!("expected Deadlock, got {other:?}"),
    }

    // Runtime counterpart: rank 1 fires chunks 0..3 then silently skips the
    // last one, outliving rank 0's deadline so the failure is a Timeout
    // (not RankDead).
    let mut world = World::new(2);
    world.set_collective_timeout(Duration::from_millis(100));
    let results = world.run_fallible(|c| {
        let shard = Tensor::full(&[4, 2], (c.rank() + 1) as f32);
        for j in 0..chunks {
            if c.rank() == 1 && j == chunks - 1 {
                std::thread::sleep(Duration::from_millis(400));
                return Ok(());
            }
            c.try_all_gather_chunk(&shard, j, chunks)?;
        }
        Ok(())
    });
    assert!(results[1].is_ok(), "the dropping rank itself exits cleanly");
    match &results[0] {
        Err(CollectiveError::Timeout { rank: 0, op: "all_gather", .. }) => {}
        other => panic!("expected Timeout on rank 0, got {other:?}"),
    }
}

fn micro_data(c: &TransformerConfig, n: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut rng = SplitMix64::new(500);
    (0..n)
        .map(|_| {
            let toks = (0..c.tokens()).map(|_| (rng.next_u64() as usize) % c.vocab).collect();
            let tgts = (0..c.tokens()).map(|_| (rng.next_u64() as usize) % c.vocab).collect();
            (toks, tgts)
        })
        .collect()
}

/// End-to-end 1F1B: the executor's measured per-rank activation peak equals
/// the analyzer's static liveness peak for the identical schedule.
#[test]
fn pipeline_peak_matches_runtime_1f1b() {
    let cfg = TransformerConfig {
        hidden: 32,
        heads: 4,
        seq: 8,
        micro_batch: 1,
        layers: 4,
        vocab: 32,
        dropout_p: 0.1,
        causal: true,
    };
    let (tp, pp, n) = (2usize, 2usize, 3usize);
    let data = micro_data(&cfg, n);
    for sp in [false, true] {
        for policy in POLICIES {
            let gpt = Gpt::init(cfg, policy, 11);
            let measured = run_grid(tp, pp, |g| {
                let model = StageModel::from_gpt(&gpt, pp, g.stage, tp, g.tp_rank, policy);
                run_1f1b_iteration(&model, &g, sp, &data, 0).peak_activation_bytes
            });
            let prog = pipeline_1f1b_program(&cfg, tp, pp, sp, policy, n);
            assert_eq!(check_schedule(&prog), Ok(()), "sp={sp} {policy:?}: matching");
            let reports = analyze_liveness(&prog).expect("static liveness");
            for (rank, peak) in measured.iter().enumerate() {
                assert_eq!(reports[rank].peak_bytes, *peak, "sp={sp} {policy:?}: rank {rank} peak");
                assert_eq!(reports[rank].live_end_bytes, 0, "rank {rank} leak");
            }
        }
    }
}

proptest! {
    /// Random small layer configurations: the static program, the running
    /// system, and the Table 2 closed form agree on every rank.
    #[test]
    fn random_layer_configs_agree(
        head_dim in 1usize..5,
        seq_mult in 1usize..4,
        micro_batch in 1usize..3,
        t_sel in 0usize..2,
        sp_sel in 0usize..2,
        policy_sel in 0usize..3,
        dropout_sel in 0usize..2,
    ) {
        let t = [1usize, 2][t_sel];
        let sp = sp_sel == 1 && t > 1;
        let cfg = TransformerConfig {
            hidden: 4 * head_dim * 4,
            heads: 4,
            seq: 2 * seq_mult * t,
            micro_batch,
            layers: 1,
            vocab: 16,
            dropout_p: if dropout_sel == 1 { 0.1 } else { 0.0 },
            causal: true,
        };
        assert_layer_agreement(cfg, t, sp, POLICIES[policy_sel]);
    }

    /// A corrupted collective is caught by **both** detectors: the static
    /// matcher flags the program, and the runtime fails the exchange with
    /// `CollectiveError::SpmdMismatch` — while the uncorrupted program is
    /// green on both sides.
    #[test]
    fn mistagged_collective_flagged_statically_and_at_runtime(
        base in 2usize..6,
        corrupt_sel in 0usize..2,
    ) {
        let corrupt = corrupt_sel == 1;
        let shape_for = |rank: usize| {
            if corrupt && rank == 1 { vec![base + 1] } else { vec![base] }
        };

        // Static side: two ranks all-reducing, rank 1 possibly mistagged.
        let program = Program {
            tp: 2,
            pp: 1,
            ranks: (0..2)
                .map(|rank| {
                    let shape = shape_for(rank);
                    let elems = shape[0] as u64;
                    RankProgram {
                        rank,
                        ops: vec![ScheduleOp::Collective {
                            group: GroupId::Tp { stage: 0 },
                            kind: CollectiveKind::AllReduce,
                            tag: CallTag { op: "all_reduce", shape, root: None, chunk: None, epoch: 0 },
                            payload_elems: elems,
                        }],
                    }
                })
                .collect(),
        };
        let static_verdict = check_schedule(&program);

        // Runtime side: the same two ranks, the same tensors.
        let mut world = World::new(2);
        world.set_collective_timeout(Duration::from_secs(10));
        let runtime = world.run_fallible(|c| {
            let x = Tensor::full(&shape_for(c.rank()), 1.0);
            c.try_all_reduce(&x).map(|_| ())
        });

        if corrupt {
            prop_assert!(
                matches!(static_verdict, Err(ScheduleFault::SpmdMismatch { .. })),
                "static verdict: {static_verdict:?}"
            );
            for r in &runtime {
                prop_assert!(
                    matches!(r, Err(CollectiveError::SpmdMismatch { .. })),
                    "runtime verdict: {r:?}"
                );
            }
        } else {
            prop_assert_eq!(&static_verdict, &Ok(()));
            for r in &runtime {
                prop_assert!(r.is_ok(), "clean run failed: {r:?}");
            }
        }
    }
}
