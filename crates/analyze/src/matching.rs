//! Cross-rank collective matching and deadlock-freedom.
//!
//! Simulates every rendezvous in a [`Program`]: each rank advances through
//! its ops; a collective blocks until every group member has entered it
//! with the same kind, [`CallTag`], and payload; a recv blocks until the
//! matching send has fired (sends are buffered, as in the runtime's
//! unbounded channels). Because the per-rank programs are straight-line —
//! exactly what the executors run — a simulation that retires every op *is*
//! a proof of deadlock-freedom: any send/recv cycle or collective-order
//! divergence would leave ranks blocked, which surfaces as a
//! [`ScheduleFault::Deadlock`] naming every stuck rank and what it was
//! waiting for.

use crate::ir::{GroupId, Program, ScheduleOp};
use mt_collectives::CallTag;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// A defect found in a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleFault {
    /// Two ranks entered the same rendezvous with different identities —
    /// the static counterpart of `CollectiveError::SpmdMismatch`.
    SpmdMismatch {
        /// Group on which the rendezvous diverged.
        group: GroupId,
        /// First rank to arrive, fixing the round's expected identity.
        first_rank: usize,
        /// Tag the first arrival deposited (boxed to keep the fault small).
        expected: Box<CallTag>,
        /// The diverging rank.
        rank: usize,
        /// Tag the diverging rank brought.
        found: Box<CallTag>,
    },
    /// Group members agree on the tag but record different payload sizes —
    /// a stats-accounting bug even though the runtime would rendezvous.
    PayloadMismatch {
        /// Group on which the payloads diverged.
        group: GroupId,
        /// First rank to arrive.
        first_rank: usize,
        /// Payload elements the first arrival recorded.
        expected: u64,
        /// The diverging rank.
        rank: usize,
        /// Payload elements the diverging rank recorded.
        found: u64,
    },
    /// A receive popped a message of the wrong size.
    P2pElemsMismatch {
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
        /// Elements the receiver expected.
        expected: u64,
        /// Elements the queued send carried.
        found: u64,
    },
    /// The simulation stalled with ranks blocked: a deadlock (or a peer
    /// that exited early). Each entry is `(rank, what it was waiting for)`.
    Deadlock {
        /// Blocked ranks and their wait descriptions.
        blocked: Vec<(usize, String)>,
    },
    /// Sends were still queued when every rank finished — a message nobody
    /// receives.
    DanglingSend {
        /// Sender.
        from: usize,
        /// Intended receiver.
        to: usize,
        /// Number of unconsumed messages on that edge.
        count: usize,
    },
    /// A `Free` named an allocation that was already freed (liveness pass).
    DoubleFree {
        /// Rank whose program double-frees.
        rank: usize,
        /// The allocation id freed twice.
        alloc: crate::ir::AllocId,
    },
    /// A `Free` named an allocation the rank never made (liveness pass).
    UnknownAlloc {
        /// Rank whose program frees a phantom allocation.
        rank: usize,
        /// The unknown allocation id.
        alloc: crate::ir::AllocId,
    },
}

impl fmt::Display for ScheduleFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleFault::SpmdMismatch { group, first_rank, expected, rank, found } => write!(
                f,
                "SPMD mismatch on {group:?}: rank {first_rank} opened round {expected} but rank {rank} brought {found}"
            ),
            ScheduleFault::PayloadMismatch { group, first_rank, expected, rank, found } => write!(
                f,
                "payload mismatch on {group:?}: rank {first_rank} records {expected} elements but rank {rank} records {found}"
            ),
            ScheduleFault::P2pElemsMismatch { from, to, expected, found } => write!(
                f,
                "p2p size mismatch {from}→{to}: receiver expects {expected} elements, sender queued {found}"
            ),
            ScheduleFault::Deadlock { blocked } => {
                write!(f, "deadlock: ")?;
                for (i, (rank, what)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "rank {rank} {what}")?;
                }
                Ok(())
            }
            ScheduleFault::DanglingSend { from, to, count } => {
                write!(f, "{count} dangling send(s) {from}→{to}: nobody receives them")
            }
            ScheduleFault::DoubleFree { rank, alloc } => {
                write!(f, "rank {rank} frees allocation {alloc:?} twice")
            }
            ScheduleFault::UnknownAlloc { rank, alloc } => {
                write!(f, "rank {rank} frees allocation {alloc:?} it never made")
            }
        }
    }
}

/// An open rendezvous round on one group.
struct Round {
    first_rank: usize,
    tag: CallTag,
    payload: u64,
    arrived: Vec<usize>,
}

enum StepOutcome {
    Progress,
    Blocked(String),
    Done,
    Fault(ScheduleFault),
}

/// Verifies collective matching and deadlock-freedom for a whole program.
///
/// Returns `Ok(())` when every rank retires every op; the first fault
/// otherwise. (The simulation stops at the first mismatch, mirroring the
/// runtime's poisoned-exchange semantics where one bad tag fails the whole
/// group.)
///
/// # Errors
///
/// The [`ScheduleFault`] describing the earliest defect encountered.
pub fn check_schedule(program: &Program) -> Result<(), ScheduleFault> {
    let n = program.ranks.len();
    assert_eq!(n, program.tp * program.pp, "program rank count disagrees with its grid");
    let mut pc = vec![0usize; n];
    let mut channels: HashMap<(usize, usize), VecDeque<u64>> = HashMap::new();
    let mut rounds: HashMap<GroupId, Round> = HashMap::new();
    let mut queue: VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    // What each blocked rank is waiting on, for deadlock reporting.
    let mut waiting: Vec<Option<String>> = vec![None; n];

    while let Some(rank) = queue.pop_front() {
        queued[rank] = false;
        loop {
            let outcome = step(program, rank, &mut pc, &mut channels, &mut rounds, |r| {
                if !queued[r] {
                    queued[r] = true;
                    queue.push_back(r);
                }
            });
            match outcome {
                StepOutcome::Progress => {
                    waiting[rank] = None;
                }
                StepOutcome::Blocked(what) => {
                    waiting[rank] = Some(what);
                    break;
                }
                StepOutcome::Done => {
                    waiting[rank] = None;
                    break;
                }
                StepOutcome::Fault(fault) => return Err(fault),
            }
        }
    }

    let blocked: Vec<(usize, String)> = waiting
        .iter()
        .enumerate()
        .filter_map(|(r, w)| w.as_ref().map(|what| (r, what.clone())))
        .collect();
    if !blocked.is_empty() {
        return Err(ScheduleFault::Deadlock { blocked });
    }
    for ((from, to), pending) in &channels {
        if !pending.is_empty() {
            return Err(ScheduleFault::DanglingSend { from: *from, to: *to, count: pending.len() });
        }
    }
    Ok(())
}

/// Executes one op of `rank`, if possible. `wake` enqueues a rank that may
/// now be able to progress.
fn step(
    program: &Program,
    rank: usize,
    pc: &mut [usize],
    channels: &mut HashMap<(usize, usize), VecDeque<u64>>,
    rounds: &mut HashMap<GroupId, Round>,
    mut wake: impl FnMut(usize),
) -> StepOutcome {
    let ops = &program.ranks[rank].ops;
    let Some(op) = ops.get(pc[rank]) else {
        return StepOutcome::Done;
    };
    match op {
        ScheduleOp::Alloc { .. } | ScheduleOp::Free { .. } => {
            pc[rank] += 1;
            StepOutcome::Progress
        }
        ScheduleOp::Send { to, elems } => {
            channels.entry((rank, *to)).or_default().push_back(*elems);
            pc[rank] += 1;
            // The receiver may have been blocked on this edge.
            wake(*to);
            StepOutcome::Progress
        }
        ScheduleOp::Recv { from, elems } => {
            let Some(found) = channels.entry((*from, rank)).or_default().pop_front() else {
                return StepOutcome::Blocked(format!(
                    "waiting to recv {elems} elements from rank {from} (op {})",
                    pc[rank]
                ));
            };
            if found != *elems {
                return StepOutcome::Fault(ScheduleFault::P2pElemsMismatch {
                    from: *from,
                    to: rank,
                    expected: *elems,
                    found,
                });
            }
            pc[rank] += 1;
            StepOutcome::Progress
        }
        ScheduleOp::Collective { group, kind, tag, payload_elems } => {
            let size = program.group_size(*group);
            let round = rounds.entry(*group).or_insert_with(|| Round {
                first_rank: rank,
                tag: tag.clone(),
                payload: *payload_elems,
                arrived: Vec::with_capacity(size),
            });
            if round.tag != *tag {
                return StepOutcome::Fault(ScheduleFault::SpmdMismatch {
                    group: *group,
                    first_rank: round.first_rank,
                    expected: Box::new(round.tag.clone()),
                    rank,
                    found: Box::new(tag.clone()),
                });
            }
            if round.payload != *payload_elems {
                return StepOutcome::Fault(ScheduleFault::PayloadMismatch {
                    group: *group,
                    first_rank: round.first_rank,
                    expected: round.payload,
                    rank,
                    found: *payload_elems,
                });
            }
            debug_assert!(!round.arrived.contains(&rank), "rank re-entered an open round");
            round.arrived.push(rank);
            if round.arrived.len() == size {
                // Round complete: everyone advances.
                let members = rounds.remove(group).expect("round present").arrived;
                for member in members {
                    pc[member] += 1;
                    if member != rank {
                        wake(member);
                    }
                }
                StepOutcome::Progress
            } else {
                StepOutcome::Blocked(format!("waiting in {} ({kind:?}) on {group:?}", tag))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::RankProgram;
    use mt_collectives::CollectiveKind;

    fn coll(group: GroupId, op: &'static str, shape: Vec<usize>) -> ScheduleOp {
        ScheduleOp::Collective {
            group,
            kind: CollectiveKind::AllReduce,
            tag: CallTag { op, shape, root: None, chunk: None, epoch: 0 },
            payload_elems: 4,
        }
    }

    fn two_rank(ops0: Vec<ScheduleOp>, ops1: Vec<ScheduleOp>) -> Program {
        Program {
            tp: 2,
            pp: 1,
            ranks: vec![RankProgram { rank: 0, ops: ops0 }, RankProgram { rank: 1, ops: ops1 }],
        }
    }

    #[test]
    fn matching_collectives_pass() {
        let g = GroupId::Tp { stage: 0 };
        let p = two_rank(
            vec![coll(g, "all_reduce", vec![2, 2])],
            vec![coll(g, "all_reduce", vec![2, 2])],
        );
        assert_eq!(check_schedule(&p), Ok(()));
    }

    #[test]
    fn mismatched_tags_are_flagged() {
        let g = GroupId::Tp { stage: 0 };
        let p =
            two_rank(vec![coll(g, "all_reduce", vec![2, 2])], vec![coll(g, "all_reduce", vec![4])]);
        match check_schedule(&p) {
            Err(ScheduleFault::SpmdMismatch { expected, found, .. }) => {
                assert_ne!(expected, found);
            }
            other => panic!("expected SpmdMismatch, got {other:?}"),
        }
    }

    #[test]
    fn missing_participant_is_a_deadlock() {
        let g = GroupId::Tp { stage: 0 };
        let p = two_rank(vec![coll(g, "all_reduce", vec![2, 2])], vec![]);
        match check_schedule(&p) {
            Err(ScheduleFault::Deadlock { blocked }) => {
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].0, 0);
            }
            other => panic!("expected Deadlock, got {other:?}"),
        }
    }

    #[test]
    fn send_recv_order_does_not_deadlock() {
        // Rank 0 sends then receives; rank 1 receives then sends — fine
        // because sends are buffered.
        let p = two_rank(
            vec![ScheduleOp::Send { to: 1, elems: 8 }, ScheduleOp::Recv { from: 1, elems: 8 }],
            vec![ScheduleOp::Recv { from: 0, elems: 8 }, ScheduleOp::Send { to: 0, elems: 8 }],
        );
        assert_eq!(check_schedule(&p), Ok(()));
    }

    #[test]
    fn mutual_recv_first_deadlocks() {
        let p = two_rank(
            vec![ScheduleOp::Recv { from: 1, elems: 8 }, ScheduleOp::Send { to: 1, elems: 8 }],
            vec![ScheduleOp::Recv { from: 0, elems: 8 }, ScheduleOp::Send { to: 0, elems: 8 }],
        );
        assert!(matches!(check_schedule(&p), Err(ScheduleFault::Deadlock { .. })));
    }

    #[test]
    fn wrong_p2p_size_is_flagged() {
        let p = two_rank(
            vec![ScheduleOp::Send { to: 1, elems: 8 }],
            vec![ScheduleOp::Recv { from: 0, elems: 9 }],
        );
        assert!(matches!(
            check_schedule(&p),
            Err(ScheduleFault::P2pElemsMismatch { expected: 9, found: 8, .. })
        ));
    }

    #[test]
    fn unreceived_send_is_flagged() {
        let p = two_rank(vec![ScheduleOp::Send { to: 1, elems: 8 }], vec![]);
        assert!(matches!(
            check_schedule(&p),
            Err(ScheduleFault::DanglingSend { from: 0, to: 1, count: 1 })
        ));
    }
}
