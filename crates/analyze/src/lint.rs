//! `mt-lint`: workspace source-hygiene rules.
//!
//! A deliberately small, line-oriented scanner — no parsing, no macros —
//! enforcing the invariants the analyses in this crate depend on:
//!
//! * **`hand-rolled-call-tag`** — `CallTag` values may only be built by the
//!   single constructor on the runtime communicator (`World::call_tag`).
//!   Every collective call site funnels through it, so the extraction pass
//!   can mirror tags byte-for-byte and the SPMD matcher verifies the real
//!   rendezvous identities.
//! * **`wall-clock`** — deterministic crates (everything except the tracer
//!   and the benchmark harness) must not read wall clocks; wall-clock reads
//!   are how nondeterminism sneaks into otherwise replayable schedules.
//! * **`hot-path-unwrap`** — the collective and pipeline hot paths may not
//!   use bare `.unwrap()`; a panic there must state its invariant via
//!   `.expect("…")`, and each such expect is reviewed into the allowlist.
//! * **`epoch-bearing-call-tag`** — recovery paths (the retry and elastic
//!   drivers) must install a world-formation epoch on every `World` they
//!   build, so the collectives of a re-formed world carry epoch-bearing
//!   tags and cross-epoch stragglers fence out as `SpmdMismatch` instead
//!   of deadlocking. A `World::new` in a recovery path must be followed by
//!   a `set_epoch` call within the next few lines.
//! * **`raw-sync-primitive`** — everything outside `crates/sync` must
//!   synchronize through the `mt-sync` facade. A direct `parking_lot` /
//!   `crossbeam` / `std::sync` blocking primitive (mutex, condvar, rwlock,
//!   once-cell, channel, barrier) is invisible to the `mt_check` model
//!   checker, so an interleaving bug behind it can never be explored.
//!   Lock-free `std::sync::atomic` types and `Arc` are exempt — the
//!   checker does not schedule them and they carry no blocking edges.
//! * **`unsafe-code`** — `unsafe` stays out of workspace sources except
//!   where a reviewed allowlist entry records the safety argument. The one
//!   sanctioned use today is the kernels' SIMD feature dispatch: calling a
//!   `#[target_feature]` function after `is_x86_feature_detected!`
//!   verified the CPU. Anything else (raw pointers, transmutes, unchecked
//!   indexing) would silently void the determinism and memory-safety
//!   arguments the rest of the workspace builds on.
//!
//! Findings are suppressed only by an [`Allowlist`] entry carrying a
//! written justification; unused entries are reported so the allowlist
//! can't silently rot.
//!
//! Lines inside comments and anything after a file's first `#[cfg(test)]`
//! are out of scope (tests legitimately hand-roll tags to provoke
//! mismatches).

use std::cell::Cell;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Rule identifier (e.g. `hand-rolled-call-tag`).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub text: String,
    /// What the rule demands.
    pub message: &'static str,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.rule, self.message, self.text
        )
    }
}

/// One allowlist entry: `rule | path-suffix | line-substring |
/// justification`.
#[derive(Debug)]
struct AllowEntry {
    rule: String,
    path_suffix: String,
    line_substring: String,
    justification: String,
    used: Cell<bool>,
}

/// Suppressions for reviewed findings, loaded from `mt-lint.allow`.
///
/// Line format (one entry per line, `#` comments):
///
/// ```text
/// rule | path-suffix | line-substring | justification
/// ```
///
/// An entry suppresses a finding when the rule matches, the finding's path
/// ends with the suffix, and the offending line contains the substring.
/// The justification is mandatory — an entry without one is a parse error.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// The empty allowlist (suppresses nothing).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parses allowlist text.
    ///
    /// # Errors
    ///
    /// A description of the first malformed line (wrong field count or a
    /// blank field).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('|').map(str::trim).collect();
            if fields.len() != 4 || fields.iter().any(|f| f.is_empty()) {
                return Err(format!(
                    "mt-lint.allow line {}: expected `rule | path-suffix | line-substring | justification`, got `{raw}`",
                    i + 1
                ));
            }
            entries.push(AllowEntry {
                rule: fields[0].to_string(),
                path_suffix: fields[1].to_string(),
                line_substring: fields[2].to_string(),
                justification: fields[3].to_string(),
                used: Cell::new(false),
            });
        }
        Ok(Allowlist { entries })
    }

    /// Loads and parses an allowlist file.
    ///
    /// # Errors
    ///
    /// I/O failure or a malformed line (as a string, for the CLI).
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        Self::parse(&text)
    }

    /// Whether a finding is suppressed; marks the matching entry as used.
    fn permits(&self, rule: &str, path: &str, line_text: &str) -> bool {
        for e in &self.entries {
            if e.rule == rule
                && path.ends_with(&e.path_suffix)
                && line_text.contains(&e.line_substring)
            {
                e.used.set(true);
                return true;
            }
        }
        false
    }

    /// Entries that never suppressed anything over the scans so far —
    /// stale suppressions that should be deleted. Each is rendered as
    /// `rule | path-suffix | line-substring (justification)`.
    pub fn unused(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| !e.used.get())
            .map(|e| {
                format!(
                    "{} | {} | {} ({})",
                    e.rule, e.path_suffix, e.line_substring, e.justification
                )
            })
            .collect()
    }
}

/// A lint rule: patterns to flag and the paths they apply to.
struct Rule {
    name: &'static str,
    message: &'static str,
    /// Substrings that trigger the rule. Built by concatenation so this
    /// file does not contain its own trigger text.
    patterns: Vec<String>,
    in_scope: fn(&str) -> bool,
}

fn callsite_tag_scope(path: &str) -> bool {
    // The type's own definition (and its Display impl) live here.
    !path.ends_with("crates/collectives/src/error.rs")
}

fn deterministic_crate_scope(path: &str) -> bool {
    if path.starts_with("src/") {
        return true; // the root integration package
    }
    path.starts_with("crates/")
        && !path.starts_with("crates/trace/")
        && !path.starts_with("crates/bench/")
}

fn hot_path_scope(path: &str) -> bool {
    path.ends_with("crates/collectives/src/group.rs")
        || path.ends_with("crates/collectives/src/grid.rs")
        || path.ends_with("crates/model/src/pipeline_exec.rs")
}

/// Files that re-form worlds after failures: the same-degree retry driver
/// and everything in the elastic crate.
fn recovery_path_scope(path: &str) -> bool {
    path.starts_with("crates/elastic/src/") || path.ends_with("crates/model/src/recovery.rs")
}

/// The facade's own sources (the real-mode backend re-exports and the
/// checked instrumentation) are the only place raw primitives may appear.
fn sync_facade_scope(path: &str) -> bool {
    !path.starts_with("crates/sync/")
}

/// `unsafe` is policed everywhere the walker reaches (root `src/` and
/// every `crates/*/src`); exceptions live in the allowlist, not the scope.
fn unsafe_scope(_path: &str) -> bool {
    true
}

/// Blocking `std::sync` names the `raw-sync-primitive` rule refuses outside
/// the facade. Atomics and `Arc` are deliberately absent.
const BLOCKING_STD_SYNC: [&str; 6] = ["Mutex", "Condvar", "RwLock", "OnceLock", "mpsc", "Barrier"];

const RAW_SYNC_MESSAGE: &str = "synchronize through the mt-sync facade so checked builds \
                                instrument every operation (atomics and Arc are exempt)";

/// How many lines after a `World::new` the mandatory `set_epoch` may
/// trail (world construction is a short builder-style sequence).
const EPOCH_LOOKAHEAD: usize = 4;

fn rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "hand-rolled-call-tag",
            message: "build tags with the communicator's call_tag constructor, \
                      not a struct literal",
            patterns: vec![String::from("CallTag") + " {"],
            in_scope: callsite_tag_scope,
        },
        Rule {
            name: "wall-clock",
            message: "deterministic crates must not read wall clocks \
                      (route timing through mt-trace)",
            patterns: vec![String::from("Instant") + "::now", String::from("SystemTime") + "::now"],
            in_scope: deterministic_crate_scope,
        },
        Rule {
            name: "hot-path-unwrap",
            message: "collective/pipeline hot paths must state panic invariants \
                      (use expect with a message, reviewed into the allowlist)",
            patterns: vec![String::from(".unwrap") + "()", String::from(".expect") + "("],
            in_scope: hot_path_scope,
        },
        Rule {
            name: "raw-sync-primitive",
            message: RAW_SYNC_MESSAGE,
            patterns: vec![String::from("parking_") + "lot", String::from("cross") + "beam"],
            in_scope: sync_facade_scope,
        },
        Rule {
            name: "unsafe-code",
            message: "state the safety argument in a reviewed allowlist entry \
                      (sanctioned today: SIMD feature dispatch behind runtime \
                      detection)",
            // `unsafe` followed by a space or block-open covers fn/impl/
            // trait declarations and expression blocks; `unsafe_code`
            // attribute mentions do not match.
            patterns: vec![String::from("unsa") + "fe {", String::from("unsa") + "fe "],
            in_scope: unsafe_scope,
        },
    ]
}

/// Scans one file's contents. `path` must be workspace-relative with
/// forward slashes (it is what rule scopes and allowlist suffixes match
/// against).
pub fn lint_source(path: &str, content: &str, allow: &Allowlist) -> Vec<LintFinding> {
    let rules = rules();
    let active: Vec<&Rule> = rules.iter().filter(|r| (r.in_scope)(path)).collect();
    let epoch_rule = recovery_path_scope(path);
    if active.is_empty() && !epoch_rule {
        return Vec::new();
    }
    let cfg_test = String::from("#[cfg") + "(test)]";
    let world_new = String::from("World") + "::new(";
    // The `raw-sync-primitive` std::sync arm needs a conjunction (module
    // path AND a blocking name on the same line) the substring engine can't
    // express, so it is matched here like the epoch rule.
    let std_sync = String::from("std::") + "sync::";
    let raw_sync = sync_facade_scope(path);
    let lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with(&cfg_test) {
            break; // test modules sit at the end of files in this workspace
        }
        if trimmed.starts_with("//") {
            continue;
        }
        for rule in &active {
            if rule.patterns.iter().any(|p| trimmed.contains(p.as_str()))
                && !allow.permits(rule.name, path, trimmed)
            {
                findings.push(LintFinding {
                    rule: rule.name,
                    path: path.to_string(),
                    line: i + 1,
                    text: trimmed.to_string(),
                    message: rule.message,
                });
            }
        }
        if raw_sync
            && trimmed.contains(std_sync.as_str())
            && BLOCKING_STD_SYNC.iter().any(|name| trimmed.contains(name))
            && !allow.permits("raw-sync-primitive", path, trimmed)
        {
            findings.push(LintFinding {
                rule: "raw-sync-primitive",
                path: path.to_string(),
                line: i + 1,
                text: trimmed.to_string(),
                message: RAW_SYNC_MESSAGE,
            });
        }
        // Epoch rule: a recovery-path world must declare its formation
        // epoch right after construction.
        if epoch_rule && trimmed.contains(world_new.as_str()) {
            let epoch_set =
                lines[i + 1..].iter().take(EPOCH_LOOKAHEAD).any(|l| l.contains("set_epoch"));
            if !epoch_set && !allow.permits("epoch-bearing-call-tag", path, trimmed) {
                findings.push(LintFinding {
                    rule: "epoch-bearing-call-tag",
                    path: path.to_string(),
                    line: i + 1,
                    text: trimmed.to_string(),
                    message: "recovery-path worlds must install a formation epoch \
                              (call set_epoch right after World::new) so re-formed \
                              collectives carry epoch-bearing tags",
                });
            }
        }
    }
    findings
}

/// Scans the workspace rooted at `root`: the root package's `src/` plus
/// every `crates/*/src`. Vendored stand-ins, build output, tests, benches,
/// and examples are skipped.
///
/// # Errors
///
/// The first I/O failure while walking or reading sources.
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> io::Result<Vec<LintFinding>> {
    let mut findings = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, allow, &mut findings)?;
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

fn walk(
    root: &Path,
    dir: &Path,
    allow: &Allowlist,
    findings: &mut Vec<LintFinding>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | "tests" | "benches" | "examples") {
                continue;
            }
            walk(root, &path, allow, findings)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let content = fs::read_to_string(&path)?;
            findings.extend(lint_source(&rel, &content, allow));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_rolled_tag_is_flagged() {
        let src = "fn f() {\n    let t = CallTag { op: \"x\", shape: vec![], root: None };\n}\n";
        let found = lint_source("crates/collectives/src/group.rs", src, &Allowlist::empty());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "hand-rolled-call-tag");
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn allowlist_suppresses_and_tracks_usage() {
        let src = "let t = CallTag { op: \"x\", shape: vec![], root: None };\n";
        let allow = Allowlist::parse(
            "# comment\nhand-rolled-call-tag | group.rs | CallTag | reviewed constructor\n\
             wall-clock | group.rs | never-matches | stale entry\n",
        )
        .unwrap();
        let found = lint_source("crates/collectives/src/group.rs", src, &allow);
        assert!(found.is_empty());
        let unused = allow.unused();
        assert_eq!(unused.len(), 1);
        assert!(unused[0].contains("stale entry"));
    }

    #[test]
    fn wall_clock_scope_excludes_trace_and_bench() {
        let src = "let t0 = Instant::now();\n";
        assert_eq!(lint_source("crates/model/src/layer.rs", src, &Allowlist::empty()).len(), 1);
        assert!(lint_source("crates/trace/src/tracer.rs", src, &Allowlist::empty()).is_empty());
        assert!(lint_source("crates/bench/src/bin/kernel_bench.rs", src, &Allowlist::empty())
            .is_empty());
    }

    #[test]
    fn test_modules_and_comments_are_out_of_scope() {
        let src = "// let t = CallTag { .. };\nfn ok() {}\n#[cfg(test)]\nmod tests {\n    fn f() { let t = CallTag { op: \"x\", shape: vec![], root: None }; }\n}\n";
        assert!(lint_source("crates/collectives/src/group.rs", src, &Allowlist::empty()).is_empty());
    }

    #[test]
    fn bare_unwrap_in_hot_path_is_flagged() {
        let src = "let x = rx.recv().unwrap();\n";
        let found = lint_source("crates/model/src/pipeline_exec.rs", src, &Allowlist::empty());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "hot-path-unwrap");
        // Same line outside a hot path is fine.
        assert!(lint_source("crates/model/src/layer.rs", src, &Allowlist::empty()).is_empty());
    }

    #[test]
    fn recovery_world_without_epoch_is_flagged() {
        let bare = "fn retry() {\n    let mut world = World::new(tp);\n    world.set_timeout(t);\n    world.run(|c| step(c));\n}\n";
        let found = lint_source("crates/elastic/src/driver.rs", bare, &Allowlist::empty());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "epoch-bearing-call-tag");
        assert_eq!(found[0].line, 2);
        // recovery.rs is also in scope; unrelated model files are not.
        assert_eq!(lint_source("crates/model/src/recovery.rs", bare, &Allowlist::empty()).len(), 1);
        assert!(lint_source("crates/model/src/trainer.rs", bare, &Allowlist::empty()).is_empty());
    }

    #[test]
    fn recovery_world_with_epoch_passes() {
        let good = "fn reform() {\n    let mut world = World::new(t_new);\n    world.set_epoch(epoch);\n    world.run(|c| step(c));\n}\n";
        assert!(lint_source("crates/elastic/src/driver.rs", good, &Allowlist::empty()).is_empty());
        // set_epoch trailing past the lookahead window does not count.
        let late = format!(
            "fn f() {{\n    let mut world = World::new(t);\n{}    world.set_epoch(e);\n}}\n",
            "    other();\n".repeat(EPOCH_LOOKAHEAD)
        );
        assert_eq!(
            lint_source("crates/elastic/src/driver.rs", &late, &Allowlist::empty()).len(),
            1
        );
    }

    #[test]
    fn raw_sync_primitive_is_flagged_outside_the_facade() {
        for src in [
            "use parking_lot::{Condvar, Mutex};\n",
            "use crossbeam::channel::unbounded;\n",
            "use std::sync::{Arc, Mutex};\n",
            "use std::sync::mpsc;\n",
            "static CELL: std::sync::OnceLock<u32> = std::sync::OnceLock::new();\n",
        ] {
            let found = lint_source("crates/collectives/src/group.rs", src, &Allowlist::empty());
            assert_eq!(found.len(), 1, "expected exactly one finding for {src:?}: {found:?}");
            assert_eq!(found[0].rule, "raw-sync-primitive");
        }
    }

    #[test]
    fn raw_sync_primitive_exempts_the_facade_atomics_and_arc() {
        let raw = "use parking_lot::Mutex;\nuse std::sync::Condvar;\n";
        assert!(lint_source("crates/sync/src/real.rs", raw, &Allowlist::empty()).is_empty());
        assert!(
            lint_source("crates/sync/src/checked/prims.rs", raw, &Allowlist::empty()).is_empty()
        );
        let fine = "use std::sync::Arc;\nuse std::sync::atomic::{AtomicUsize, Ordering};\n";
        assert!(lint_source("crates/kernels/src/backend.rs", fine, &Allowlist::empty()).is_empty());
    }

    #[test]
    fn raw_sync_primitive_respects_the_allowlist() {
        let src = "use std::sync::OnceLock;\n";
        let allow = Allowlist::parse(
            "raw-sync-primitive | tracer.rs | OnceLock | sanctioned monotonic origin\n",
        )
        .unwrap();
        assert!(lint_source("crates/trace/src/tracer.rs", src, &allow).is_empty());
        assert!(allow.unused().is_empty());
    }

    #[test]
    fn unsafe_code_is_flagged_everywhere_without_an_entry() {
        let src = "fn f() {\n    let v = unsafe { dispatch() };\n}\n";
        let found = lint_source("crates/model/src/layer.rs", src, &Allowlist::empty());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "unsafe-code");
        // Declarations are caught too, not just expression blocks.
        let decl = "pub unsafe fn raw(ptr: *mut f32) {}\n";
        let found = lint_source("crates/tensor/src/ops/mod.rs", decl, &Allowlist::empty());
        assert_eq!(found.len(), 1, "{found:?}");
        // The sanctioned SIMD dispatch passes via its allowlist entry.
        let allow = Allowlist::parse(
            "unsafe-code | gemm.rs | band_panel_avx2 | feature verified at runtime\n",
        )
        .unwrap();
        let dispatch = "Simd::Avx2 => unsafe { band_panel_avx2(k, rows, n, j0, w, a, p, c) },\n";
        assert!(lint_source("crates/kernels/src/gemm.rs", dispatch, &allow).is_empty());
        assert!(allow.unused().is_empty());
    }

    #[test]
    fn malformed_allowlist_lines_are_rejected() {
        assert!(Allowlist::parse("just-a-rule | missing-fields\n").is_err());
        assert!(Allowlist::parse("rule | path | substr |  \n").is_err());
    }
}
