//! Activation-liveness analysis.
//!
//! Replays a rank's `Alloc`/`Free` ops through a real
//! [`ActivationLedger`] — the same accounting object the runtime uses — so
//! the static peak is computed by the identical bookkeeping code the
//! executors run, and [`ActivationLedger::high_water`]'s double-count
//! assert guards both sides. The resulting [`LivenessReport`] carries the
//! cumulative ledger (comparable to the runtime's per-rank ledger and to
//! the Table 2 closed forms), the peak of live paper-counted bytes, and
//! the bytes still live at program end (which must be zero for a complete
//! iteration: every stored activation is consumed by its backward pass).

use crate::ir::{AllocId, Program, RankProgram, ScheduleOp};
use crate::matching::ScheduleFault;
use mt_model::{ActivationLedger, Category};
use std::collections::HashMap;

/// What the liveness pass proves about one rank.
#[derive(Debug, Clone)]
pub struct LivenessReport {
    /// Cumulative ledger — every `Alloc` recorded, every `Free` freed.
    /// `ledger.paper_bytes()` is the total the Table 2 formulas count;
    /// `ledger.elements(c)` is comparable to the runtime ledger per
    /// category.
    pub ledger: ActivationLedger,
    /// Peak live paper-counted bytes over the program
    /// (`ledger.high_water()`, so the double-count assert has run).
    pub peak_bytes: u64,
    /// Paper-counted bytes still live at program end. Non-zero means the
    /// schedule leaks activations across the iteration.
    pub live_end_bytes: u64,
}

/// Replays one rank's allocation events into a fresh ledger.
///
/// # Errors
///
/// [`ScheduleFault::DoubleFree`] if a `Free` names an id already freed,
/// [`ScheduleFault::UnknownAlloc`] if it names an id never allocated.
pub fn analyze_rank_liveness(rank: &RankProgram) -> Result<LivenessReport, ScheduleFault> {
    let mut ledger = ActivationLedger::new();
    let mut live: HashMap<AllocId, (Category, u64)> = HashMap::new();
    let mut retired: HashMap<AllocId, ()> = HashMap::new();
    for op in &rank.ops {
        match op {
            ScheduleOp::Alloc { id, category, elems } => {
                debug_assert!(
                    !live.contains_key(id) && !retired.contains_key(id),
                    "extraction reused AllocId {id:?}"
                );
                live.insert(*id, (*category, *elems));
                ledger.record(*category, *elems);
            }
            ScheduleOp::Free { id } => {
                let Some((category, elems)) = live.remove(id) else {
                    return Err(if retired.contains_key(id) {
                        ScheduleFault::DoubleFree { rank: rank.rank, alloc: *id }
                    } else {
                        ScheduleFault::UnknownAlloc { rank: rank.rank, alloc: *id }
                    });
                };
                retired.insert(*id, ());
                ledger.free(category, elems);
            }
            ScheduleOp::Collective { .. } | ScheduleOp::Send { .. } | ScheduleOp::Recv { .. } => {}
        }
    }
    let live_end_bytes = ledger.live_paper_bytes();
    let peak_bytes = ledger.high_water();
    Ok(LivenessReport { ledger, peak_bytes, live_end_bytes })
}

/// Liveness for every rank of a program, indexed by global rank.
///
/// # Errors
///
/// The first per-rank fault (see [`analyze_rank_liveness`]).
pub fn analyze_liveness(program: &Program) -> Result<Vec<LivenessReport>, ScheduleFault> {
    program.ranks.iter().map(analyze_rank_liveness).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank(ops: Vec<ScheduleOp>) -> RankProgram {
        RankProgram { rank: 0, ops }
    }

    #[test]
    fn peak_counts_overlapping_lifetimes() {
        let a = AllocId(0);
        let b = AllocId(1);
        let r = rank(vec![
            ScheduleOp::Alloc { id: a, category: Category::QueryKey, elems: 10 }, // 20 B live
            ScheduleOp::Alloc { id: b, category: Category::Value, elems: 5 },     // 30 B live
            ScheduleOp::Free { id: a },                                           // 10 B live
            ScheduleOp::Free { id: b },
        ]);
        let report = analyze_rank_liveness(&r).unwrap();
        assert_eq!(report.peak_bytes, 30);
        assert_eq!(report.live_end_bytes, 0);
        assert_eq!(report.ledger.paper_bytes(), 30);
    }

    #[test]
    fn small_statistics_never_enter_the_peak() {
        let r = rank(vec![ScheduleOp::Alloc {
            id: AllocId(0),
            category: Category::SmallStatistics,
            elems: 1_000_000,
        }]);
        let report = analyze_rank_liveness(&r).unwrap();
        assert_eq!(report.peak_bytes, 0);
        assert_eq!(report.live_end_bytes, 0);
        assert_eq!(report.ledger.elements(Category::SmallStatistics), 1_000_000);
    }

    #[test]
    fn double_free_is_flagged() {
        let a = AllocId(7);
        let r = rank(vec![
            ScheduleOp::Alloc { id: a, category: Category::Value, elems: 4 },
            ScheduleOp::Free { id: a },
            ScheduleOp::Free { id: a },
        ]);
        assert!(matches!(
            analyze_rank_liveness(&r),
            Err(ScheduleFault::DoubleFree { rank: 0, alloc }) if alloc == a
        ));
    }

    #[test]
    fn unknown_alloc_is_flagged() {
        let r = rank(vec![ScheduleOp::Free { id: AllocId(99) }]);
        assert!(matches!(
            analyze_rank_liveness(&r),
            Err(ScheduleFault::UnknownAlloc { rank: 0, alloc: AllocId(99) })
        ));
    }
}
