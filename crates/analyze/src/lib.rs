//! # mt-analyze
//!
//! Static analysis of the SPMD training schedules in this workspace: a
//! compiler-style pass pipeline over a per-rank schedule IR, plus the
//! `mt-lint` source-hygiene gate.
//!
//! The paper's claims — which collectives fire in what order (Section
//! 4.2.2's `g`/`ḡ` conjugates, "sequence parallelism costs no extra wire
//! bytes") and which tensors must be live (Equations 1–6, Table 2) — are
//! properties of the dataflow graph, so they can be *proved* for a
//! configuration without spawning a single rank thread:
//!
//! 1. [`extract`] symbolically dry-runs the layer builders (`mt-model`) and
//!    the 1F1B/interleaved schedules, emitting per-rank [`ScheduleOp`]
//!    sequences — no floats are touched, so paper-scale configurations
//!    (the Table 3 zoo) extract in milliseconds.
//! 2. [`matching`] simulates every rendezvous: each collective must be
//!    entered by all group members with the same kind, [`CallTag`], and
//!    payload, and every send must meet its recv — a successful simulation
//!    of the straight-line programs is a deadlock-freedom proof, the static
//!    counterpart of the runtime's `SpmdMismatch` detection.
//! 3. [`wire`] rebuilds each rank's [`CommStats`] from the IR alone,
//!    statically re-deriving the "SP == TP traffic" equality.
//! 4. [`liveness`] replays alloc/free into an [`ActivationLedger`], whose
//!    peak must equal both the runtime ledger and the Table 2 closed forms.
//!
//! [`lint`] is independent of the IR: a source scanner enforcing the
//! workspace hygiene rules (single [`CallTag`] construction site, no wall
//! clocks in deterministic crates, no `unwrap`/`expect` in collective and
//! pipeline hot paths) behind an allowlist with per-entry justifications.
//!
//! [`CallTag`]: mt_collectives::CallTag
//! [`CommStats`]: mt_collectives::CommStats
//! [`ActivationLedger`]: mt_model::ActivationLedger
//! [`ScheduleOp`]: ir::ScheduleOp

#![warn(missing_docs)]

pub mod extract;
pub mod ir;
pub mod lint;
pub mod liveness;
pub mod matching;
pub mod wire;

pub use extract::{
    interleaved_program, layer_forward_program, layer_program, layer_program_at_epoch,
    pipeline_1f1b_program, StaticMode,
};
pub use ir::{AllocId, GroupId, Program, RankProgram, ScheduleOp};
pub use lint::{lint_source, lint_workspace, Allowlist, LintFinding};
pub use liveness::{analyze_liveness, analyze_rank_liveness, LivenessReport};
pub use matching::{check_schedule, ScheduleFault};
pub use wire::{program_comm_stats, rank_comm_stats};
