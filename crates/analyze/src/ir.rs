//! The per-rank schedule IR.
//!
//! A [`Program`] is the static image of one training iteration: for every
//! rank, the exact sequence of communication and activation-memory events
//! the runtime would perform, with payload sizes but no tensor data. The
//! extraction pass ([`crate::extract`]) builds programs; the analysis passes
//! consume them.

use mt_collectives::{CallTag, CollectiveKind};
use mt_model::Category;

/// Identifies one allocation within a rank's program, so a `Free` can name
/// exactly which `Alloc` it releases. Unique per rank, not globally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocId(pub u64);

/// Which communicator group a collective runs on. Mirrors the runtime's
/// communicator layout: one tensor-parallel [`World`] per pipeline stage
/// plus one grid-wide [`World`] for stage boundaries and the loss broadcast.
///
/// [`World`]: mt_collectives::World
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupId {
    /// The tensor-parallel group of pipeline stage `stage`: global ranks
    /// `stage·t .. (stage+1)·t` (the runtime's `GridComm::tp`).
    Tp {
        /// Pipeline stage (device index under the interleaved schedule).
        stage: usize,
    },
    /// All `p·t` ranks (the runtime's `GridComm::grid`).
    Grid,
}

/// One event in a rank's schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleOp {
    /// A group collective. `payload_elems` is what the runtime's stats
    /// ledger records for the call: full-tensor elements for an all-gather,
    /// input elements for an all-reduce/reduce-scatter, this rank's local
    /// element count for a broadcast.
    Collective {
        /// The group the collective runs on.
        group: GroupId,
        /// Collective kind, as the stats ledger classifies it.
        kind: CollectiveKind,
        /// The SPMD round identity — byte-for-byte what the runtime's
        /// single tag constructor would build for this call.
        tag: CallTag,
        /// Payload elements as recorded by `CommStats`.
        payload_elems: u64,
    },
    /// Point-to-point send of `elems` elements to global rank `to` on the
    /// grid communicator.
    Send {
        /// Destination global rank.
        to: usize,
        /// Tensor elements transferred.
        elems: u64,
    },
    /// Point-to-point receive of `elems` elements from global rank `from`.
    Recv {
        /// Source global rank.
        from: usize,
        /// Tensor elements expected.
        elems: u64,
    },
    /// An activation is stored (the static image of
    /// `ActivationLedger::record`).
    Alloc {
        /// Identity of this allocation within the rank.
        id: AllocId,
        /// Ledger category.
        category: Category,
        /// Elements stored.
        elems: u64,
    },
    /// A stored activation is released by the backward pass that consumes
    /// it (the static image of `ActivationLedger::free`).
    Free {
        /// The allocation being released.
        id: AllocId,
    },
}

/// One rank's full schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankProgram {
    /// Global rank (`stage·t + tp_rank` on a grid).
    pub rank: usize,
    /// The rank's events in execution order.
    pub ops: Vec<ScheduleOp>,
}

/// A whole-iteration schedule: every rank of a `t × p` grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Tensor-parallel width `t`.
    pub tp: usize,
    /// Pipeline depth `p` (1 for single-stage programs).
    pub pp: usize,
    /// Per-rank programs, indexed by global rank.
    pub ranks: Vec<RankProgram>,
}

impl Program {
    /// Global ranks belonging to a group, in rank order.
    pub fn group_members(&self, group: GroupId) -> Vec<usize> {
        match group {
            GroupId::Tp { stage } => (stage * self.tp..(stage + 1) * self.tp).collect(),
            GroupId::Grid => (0..self.tp * self.pp).collect(),
        }
    }

    /// Number of ranks in a group.
    pub fn group_size(&self, group: GroupId) -> usize {
        match group {
            GroupId::Tp { .. } => self.tp,
            GroupId::Grid => self.tp * self.pp,
        }
    }

    /// Total ops across all ranks (a size proxy for reports).
    pub fn total_ops(&self) -> usize {
        self.ranks.iter().map(|r| r.ops.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_members_follow_stage_major_layout() {
        let p = Program { tp: 2, pp: 3, ranks: Vec::new() };
        assert_eq!(p.group_members(GroupId::Tp { stage: 1 }), vec![2, 3]);
        assert_eq!(p.group_members(GroupId::Grid), (0..6).collect::<Vec<_>>());
        assert_eq!(p.group_size(GroupId::Tp { stage: 0 }), 2);
        assert_eq!(p.group_size(GroupId::Grid), 6);
    }
}
