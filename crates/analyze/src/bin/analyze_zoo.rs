//! Static verification of every Table 3 model-zoo configuration.
//!
//! For each zoo model × {serial, TP, TP+SP} × {none, selective, full}
//! recomputation, this binary:
//!
//! 1. extracts the per-layer program and proves its cumulative activation
//!    bytes equal the Table 2 closed form **exactly** (integer equality);
//! 2. extracts a full 1F1B iteration at the model's parallel layout (with
//!    `min(p, n)` microbatches — the in-flight count that sets the peak),
//!    proves collective matching / deadlock-freedom, proves no activation
//!    outlives the iteration, and proves the first/last-stage liveness
//!    peaks equal the closed-form stage budgets;
//! 3. proves the forward-pass "SP costs no extra wire bytes" equality
//!    between the TP and TP+SP programs, rank by rank;
//! 4. for the interleaved models (175B, 530B), cross-checks the analyzer's
//!    device-0 peak against an independent direct walk of the executor's
//!    `interleaved_device_ops` and reports the ratio to the paper's
//!    `1 + (p−1)/(pm)` first-stage factor.
//!
//! Runtime-vs-static equality is proved by the crate's integration tests on
//! executable (tiny) configurations; at zoo scale, where nothing can run,
//! the static programs stand in for the runtime and are checked against the
//! paper's closed forms instead.
//!
//! Exits non-zero on the first broken proof.

use mt_analyze::{
    analyze_liveness, check_schedule, interleaved_program, layer_forward_program, layer_program,
    pipeline_1f1b_program, program_comm_stats, Program,
};
use mt_core::{ModelZoo, PaperModel};
use mt_memory::{ActivationMemoryModel, Parallelism, Recompute, Strategy};
use mt_model::pipeline_exec::interleaved_device_ops;
use mt_model::{OverlapPolicy, TransformerConfig};
use std::process::ExitCode;

const POLICIES: [Recompute; 3] = [Recompute::None, Recompute::Selective, Recompute::Full];

/// One parallel-mode column of the verification matrix.
struct Mode {
    label: &'static str,
    t: usize,
    sp: bool,
}

const MODES: [Mode; 3] = [
    Mode { label: "serial", t: 1, sp: false },
    Mode { label: "tp", t: 8, sp: false },
    Mode { label: "tp+sp", t: 8, sp: true },
];

fn exec_config(m: &PaperModel) -> TransformerConfig {
    TransformerConfig {
        hidden: m.shape.hidden as usize,
        heads: m.shape.heads as usize,
        seq: m.shape.seq as usize,
        micro_batch: m.batch.micro as usize,
        layers: m.shape.layers as usize,
        vocab: m.shape.vocab as usize,
        dropout_p: 0.1,
        causal: true,
    }
}

/// Table 2 per-layer bytes as an **exact integer**: `sbh`-multiples plus
/// the `5as²b` attention term, with the divisions the zoo shapes make exact
/// performed in integer arithmetic (the f64 evaluation in `mt-memory`
/// rounds at the 1e-16 level, which would poison byte-exact comparisons).
/// Cross-checked against the f64 model to a relative 1e-12.
fn per_layer_closed_form(m: &PaperModel, t: usize, sp: bool, policy: Recompute) -> u64 {
    let t64 = t as u64;
    let s = m.shape.seq;
    let b = m.batch.micro;
    let sbh = s * b * m.shape.hidden;
    let as2b = m.shape.heads * s * s * b;
    assert!(sbh.is_multiple_of(t64) && as2b.is_multiple_of(t64), "zoo shape must divide by t");
    let exact = match (sp, policy) {
        (false, Recompute::None) => 10 * sbh + 24 * sbh / t64 + 5 * as2b / t64,
        (true, Recompute::None) => (34 * sbh + 5 * as2b) / t64,
        (false, Recompute::Selective) => 10 * sbh + 24 * sbh / t64,
        (true, Recompute::Selective) => 34 * sbh / t64,
        (false, Recompute::Full) => 2 * sbh,
        (true, Recompute::Full) => 2 * sbh / t64,
    };
    let model = ActivationMemoryModel::new(m.shape, m.batch.micro, t64);
    let strategy = Strategy { sequence_parallel: sp, recompute: policy };
    let f64_form = model.per_layer_bytes(strategy);
    let rel = (exact as f64 - f64_form).abs() / (exact as f64).max(1.0);
    assert!(
        rel < 1e-12,
        "integer closed form {exact} drifts from mt-memory's {f64_form} for {} t={t} {policy:?}",
        m.name
    );
    exact
}

/// Bytes of the stage-0 embedding dropout mask (1 byte/element, sharded
/// along `s` under sequence parallelism).
fn embedding_mask_bytes(cfg: &TransformerConfig, t: usize, sp: bool) -> u64 {
    let rows = if sp { cfg.tokens() / t } else { cfg.tokens() };
    (rows * cfg.hidden) as u64
}

/// Bytes of the last stage's head extras: final-LayerNorm input (2sbh) +
/// output-projection input (2sbh) + fp32 logits (4sbv), all on the gathered
/// full tensor.
fn head_bytes(cfg: &TransformerConfig) -> u64 {
    (4 * cfg.tokens() * cfg.hidden + 4 * cfg.tokens() * cfg.vocab) as u64
}

struct Gate {
    failures: u64,
}

impl Gate {
    fn check(&mut self, ok: bool, what: &str) {
        if !ok {
            self.failures += 1;
            eprintln!("FAIL: {what}");
        }
    }
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut gate = Gate { failures: 0 };

    for model in ModelZoo::all() {
        let cfg = exec_config(&model);
        let p = model.parallel.pipeline as usize;
        let n = model.batch.num_micro() as usize;
        let n_eff = n.min(p);
        println!(
            "=== {} (h={}, a={}, L={}, t×p=8×{p}, micro b={}, n={n} → analyzing {n_eff} in flight)",
            model.name, cfg.hidden, cfg.heads, cfg.layers, cfg.micro_batch
        );

        for mode in &MODES {
            for policy in POLICIES {
                verify_combo(&mut gate, &model, &cfg, mode, policy, p, n_eff);
            }
        }

        // (3) Forward wire equality: the Section 4.2.2 claim, per rank.
        for policy in POLICIES {
            let tp = layer_forward_program(&cfg, 8, false, policy, OverlapPolicy::Exposed);
            let sp = layer_forward_program(&cfg, 8, true, policy, OverlapPolicy::Exposed);
            let tp_stats = program_comm_stats(&tp);
            let sp_stats = program_comm_stats(&sp);
            let equal = tp_stats
                .iter()
                .zip(&sp_stats)
                .all(|(a, b)| a.total_wire_bytes() == b.total_wire_bytes());
            gate.check(
                equal,
                &format!("{}: forward wire bytes TP == TP+SP ({policy:?})", model.name),
            );
            if policy == Recompute::None {
                println!(
                    "    forward wire bytes/rank/layer: tp={} tp+sp={} (equal ✓)",
                    tp_stats[0].total_wire_bytes(),
                    sp_stats[0].total_wire_bytes()
                );
            }
        }

        // (4) Interleaved schedule, where the runtime keeps no ledger: the
        // analyzer is the byte accounting, cross-checked against a direct
        // walk of the executor's op order.
        if let Some(m_chunks) = model.parallel.interleave {
            for policy in POLICIES {
                verify_interleaved(&mut gate, &model, &cfg, p, m_chunks as usize, policy);
            }
        }
    }

    if gate.failures == 0 {
        println!("analyze-zoo: all static proofs hold");
        ExitCode::SUCCESS
    } else {
        eprintln!("analyze-zoo: {} failed proof(s)", gate.failures);
        ExitCode::FAILURE
    }
}

fn verify_combo(
    gate: &mut Gate,
    model: &PaperModel,
    cfg: &TransformerConfig,
    mode: &Mode,
    policy: Recompute,
    p: usize,
    n_eff: usize,
) {
    let tag = format!("{} {} {policy:?}", model.name, mode.label);
    let per_layer = per_layer_closed_form(model, mode.t, mode.sp, policy);

    // (1) Per-layer program: matching + exact Table 2 equality per rank.
    let layer = layer_program(cfg, mode.t, mode.sp, policy, OverlapPolicy::Exposed);
    gate.check(check_schedule(&layer).is_ok(), &format!("{tag}: layer collective matching"));
    match analyze_liveness(&layer) {
        Ok(reports) => {
            for (rank, r) in reports.iter().enumerate() {
                gate.check(
                    r.ledger.paper_bytes() == per_layer,
                    &format!(
                        "{tag}: rank {rank} per-layer bytes {} == Table 2 closed form {per_layer}",
                        r.ledger.paper_bytes()
                    ),
                );
                gate.check(r.live_end_bytes == 0, &format!("{tag}: rank {rank} layer leak-free"));
            }
        }
        Err(e) => gate.check(false, &format!("{tag}: layer liveness: {e}")),
    }

    // (2) Full 1F1B iteration at the model's pipeline depth.
    let prog = pipeline_1f1b_program(cfg, mode.t, p, mode.sp, policy, n_eff);
    match check_schedule(&prog) {
        Ok(()) => {}
        Err(e) => gate.check(false, &format!("{tag}: 1F1B schedule: {e}")),
    }
    let reports = match analyze_liveness(&prog) {
        Ok(r) => r,
        Err(e) => {
            gate.check(false, &format!("{tag}: 1F1B liveness: {e}"));
            return;
        }
    };
    gate.check(
        reports.iter().all(|r| r.live_end_bytes == 0),
        &format!("{tag}: no activation outlives the iteration"),
    );

    let layers_here = cfg.layers / p;
    let emb = embedding_mask_bytes(cfg, mode.t, mode.sp);
    let head = head_bytes(cfg);
    let micro_stage0 = layers_here as u64 * per_layer + emb + if p == 1 { head } else { 0 };
    let expect_stage0 = n_eff as u64 * micro_stage0;
    let stage0_peak = reports[0].peak_bytes;
    gate.check(
        stage0_peak == expect_stage0,
        &format!(
            "{tag}: stage-0 peak {stage0_peak} == {n_eff}·(L/p·layer + extras) {expect_stage0}"
        ),
    );
    if p > 1 {
        let expect_last = layers_here as u64 * per_layer + head;
        let last_peak = reports[(p - 1) * mode.t].peak_bytes;
        gate.check(
            last_peak == expect_last,
            &format!("{tag}: last-stage peak {last_peak} == 1 micro budget {expect_last}"),
        );
    }
    // For the SP modes with a deep pipeline the static peak must also equal
    // the paper's Equation-5 first-stage total verbatim (its extras assume
    // the sequence-sharded embedding mask, which is exactly what the
    // schedule stores).
    if mode.sp && p > 1 && n_eff == p {
        let m = ActivationMemoryModel::new(model.shape, model.batch.micro, mode.t as u64);
        let strategy = Strategy { sequence_parallel: true, recompute: policy };
        let plain = Parallelism { interleave: None, ..model.parallel };
        let eq5 = m.first_stage_total_bytes(strategy, plain);
        let rel = (stage0_peak as f64 - eq5).abs() / eq5.max(1.0);
        gate.check(
            rel < 1e-12,
            &format!("{tag}: stage-0 peak {stage0_peak} == Eq. 5 first-stage total {eq5}"),
        );
    }
    println!(
        "    {:<7} {:<10} per-layer {:>14} B   stage0 peak {:>16} B   (1F1B ✓)",
        mode.label,
        format!("{policy:?}"),
        per_layer,
        stage0_peak
    );
}

fn verify_interleaved(
    gate: &mut Gate,
    model: &PaperModel,
    cfg: &TransformerConfig,
    p: usize,
    m_chunks: usize,
    policy: Recompute,
) {
    let tag = format!("{} interleaved m={m_chunks} {policy:?}", model.name);
    let t = 8usize;
    let n_micro = p; // peak is set by the in-flight window; n ≥ p in Table 3
    let prog = interleaved_program(cfg, t, p, m_chunks, true, policy, n_micro);
    match check_schedule(&prog) {
        Ok(()) => {}
        Err(e) => gate.check(false, &format!("{tag}: schedule: {e}")),
    }
    let reports = match analyze_liveness(&prog) {
        Ok(r) => r,
        Err(e) => {
            gate.check(false, &format!("{tag}: liveness: {e}"));
            return;
        }
    };
    gate.check(
        reports.iter().all(|r| r.live_end_bytes == 0),
        &format!("{tag}: no activation outlives the iteration"),
    );

    // Independent re-derivation: walk the executor's own op order with the
    // closed-form per-chunk byte budgets and track the running peak.
    let per_layer = per_layer_closed_form(model, t, true, policy);
    let layers_here = cfg.layers / (p * m_chunks);
    let emb = embedding_mask_bytes(cfg, t, true);
    let head = head_bytes(cfg);
    let device0_peak = reports[0].peak_bytes;
    let mut live = 0u64;
    let mut direct_peak = 0u64;
    for (is_fwd, v, _mb) in interleaved_device_ops(0, p, m_chunks, n_micro) {
        let vs = v * p; // device 0 holds virtual stages v·p
        let bytes = layers_here as u64 * per_layer
            + if vs == 0 { emb } else { 0 }
            + if vs == p * m_chunks - 1 { head } else { 0 };
        if is_fwd {
            live += bytes;
            direct_peak = direct_peak.max(live);
        } else {
            live -= bytes;
        }
    }
    gate.check(
        device0_peak == direct_peak,
        &format!("{tag}: analyzer device-0 peak {device0_peak} == direct op walk {direct_peak}"),
    );

    // Report (not assert) the ratio to the paper's first-stage factor: the
    // executor's warmup window is what actually sets the peak.
    let factor = model.parallel.first_stage_factor();
    let paper = cfg.layers as f64 * per_layer as f64 * factor + (p as f64) * emb as f64;
    println!(
        "    interleaved {:<10} device-0 peak {:>16} B   paper Eq.5 budget {:>18.0} B   ratio {:.4}",
        format!("{policy:?}"),
        device0_peak,
        paper,
        device0_peak as f64 / paper
    );
    let _ = check_totals(&prog);
}

/// Cheap structural sanity: every program the zoo emits is non-trivial.
fn check_totals(prog: &Program) -> usize {
    let ops = prog.total_ops();
    assert!(ops > 0, "empty program");
    ops
}
