//! Workspace hygiene gate. Scans the workspace sources with the rules in
//! `mt_analyze::lint` and exits non-zero on any unsuppressed finding.
//!
//! ```text
//! mt-lint [--root <dir>] [--allow <file>]
//! ```
//!
//! Defaults: root = current directory, allowlist = `<root>/mt-lint.allow`
//! (missing file ⇒ empty allowlist). Unused allowlist entries are reported
//! as warnings so stale suppressions surface without blocking a build.

use mt_analyze::{lint_workspace, Allowlist};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--allow" => match args.next() {
                Some(v) => allow_path = Some(PathBuf::from(v)),
                None => return usage("--allow needs a value"),
            },
            "--help" | "-h" => {
                println!("usage: mt-lint [--root <dir>] [--allow <file>]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let allow_path = allow_path.unwrap_or_else(|| root.join("mt-lint.allow"));
    let allow = if allow_path.is_file() {
        match Allowlist::load(&allow_path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("mt-lint: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Allowlist::empty()
    };

    let findings = match lint_workspace(&root, &allow) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mt-lint: walking {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for f in &findings {
        println!("{f}");
    }
    for stale in allow.unused() {
        eprintln!("mt-lint: warning: unused allowlist entry: {stale}");
    }
    if findings.is_empty() {
        println!("mt-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("mt-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("mt-lint: {err}\nusage: mt-lint [--root <dir>] [--allow <file>]");
    ExitCode::FAILURE
}
