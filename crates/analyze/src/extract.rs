//! IR extraction: symbolic dry-runs of the layer builders and pipeline
//! schedules.
//!
//! These walkers mirror `mt_model`'s execution paths — the conjugate
//! collective pairs of `ExecMode`, the `record_stored` ledger order, the
//! 1F1B/interleaved op orders (consumed directly from
//! `mt_model::pipeline_exec`, not re-derived) — emitting [`ScheduleOp`]s
//! instead of executing floats. Tags are built byte-for-byte as the
//! runtime's single tag constructor would build them, so the matching pass
//! verifies the *actual* rendezvous identities.

use crate::ir::{AllocId, GroupId, Program, RankProgram, ScheduleOp};
use mt_collectives::{chunk_rows, CallTag, CollectiveKind};
use mt_memory::Recompute;
use mt_model::pipeline_exec::{interleaved_device_ops, stage_ops};
use mt_model::{Category, OverlapPolicy, TransformerConfig};

/// Static image of `mt_model::ExecMode`: how a layer executes, without a
/// live communicator attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticMode {
    /// Single process, no collectives.
    Serial,
    /// Megatron tensor parallelism (`f`/`f̄` = identity / all-reduce).
    TensorParallel,
    /// Tensor + sequence parallelism (`g`/`ḡ` = all-gather /
    /// reduce-scatter).
    TensorSequenceParallel,
}

impl StaticMode {
    /// Mode selection, exactly as `pipeline_exec` chooses an `ExecMode`:
    /// serial iff `t == 1` without sequence parallelism; sequence
    /// parallelism forces the SP mode even at `t == 1` (the collectives run
    /// on a size-1 group, which is free but still tagged).
    pub fn select(t: usize, sequence_parallel: bool) -> StaticMode {
        if t == 1 && !sequence_parallel {
            StaticMode::Serial
        } else if sequence_parallel {
            StaticMode::TensorSequenceParallel
        } else {
            StaticMode::TensorParallel
        }
    }

    /// Whether sequence parallelism is active.
    pub fn sequence_parallel(self) -> bool {
        matches!(self, StaticMode::TensorSequenceParallel)
    }
}

/// Accumulates one rank's ops, handing out allocation ids.
struct Emitter {
    ops: Vec<ScheduleOp>,
    next_id: u64,
    /// World-formation epoch stamped into every emitted tag, mirroring
    /// `World::set_epoch`. 0 for a fresh world; an elastic re-formation
    /// extracts its post-reform program at the bumped epoch.
    epoch: u64,
}

impl Emitter {
    fn new() -> Self {
        Self::at_epoch(0)
    }

    fn at_epoch(epoch: u64) -> Self {
        Emitter { ops: Vec::new(), next_id: 0, epoch }
    }

    fn alloc(&mut self, category: Category, elems: u64) -> AllocId {
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.ops.push(ScheduleOp::Alloc { id, category, elems });
        id
    }

    fn free_all(&mut self, ids: &[AllocId]) {
        for &id in ids {
            self.ops.push(ScheduleOp::Free { id });
        }
    }

    /// Emits a collective with the tag the runtime's single constructor
    /// would build: `op` + the *argument* tensor's shape + optional root +
    /// optional chunk coordinate (for the `OverlapPolicy::Overlapped`
    /// sub-rendezvous).
    #[allow(clippy::too_many_arguments)]
    fn collective(
        &mut self,
        group: GroupId,
        kind: CollectiveKind,
        op: &'static str,
        shape: &[usize],
        root: Option<usize>,
        chunk: Option<(usize, usize)>,
        payload_elems: u64,
    ) {
        let epoch = self.epoch;
        let tag = CallTag { op, shape: shape.to_vec(), root, chunk, epoch };
        self.ops.push(ScheduleOp::Collective { group, kind, tag, payload_elems });
    }

    fn send(&mut self, to: usize, elems: u64) {
        self.ops.push(ScheduleOp::Send { to, elems });
    }

    fn recv(&mut self, from: usize, elems: u64) {
        self.ops.push(ScheduleOp::Recv { from, elems });
    }
}

/// Everything needed to emit one transformer layer's events for one rank.
#[derive(Clone, Copy)]
struct LayerCtx {
    cfg: TransformerConfig,
    t: usize,
    mode: StaticMode,
    policy: Recompute,
    overlap: OverlapPolicy,
    group: GroupId,
}

impl LayerCtx {
    fn tokens(&self) -> usize {
        self.cfg.tokens()
    }

    /// Rows held locally in the LayerNorm/dropout regions.
    fn rows(&self) -> usize {
        if self.mode.sequence_parallel() {
            self.tokens() / self.t
        } else {
            self.tokens()
        }
    }

    /// `g` forward / the SP re-gathers: all-gather of a `[rows, h]` shard
    /// (tag carries the shard shape; stats record the full gathered size).
    /// Under [`OverlapPolicy::Overlapped`] the gather is `C` chunk
    /// sub-rendezvous, tagged and sized exactly as
    /// `Communicator::all_gather_chunk` tags and sizes them: chunk `j`
    /// carries shard rows `[a, b)` of the [`chunk_rows`] partition, so the
    /// per-chunk payloads sum to the whole-tensor payload.
    fn enter_region_fwd(&self, e: &mut Emitter) {
        if !self.mode.sequence_parallel() {
            return;
        }
        let h = self.cfg.hidden;
        let rows = self.rows();
        match self.overlap {
            OverlapPolicy::Exposed => {
                e.collective(
                    self.group,
                    CollectiveKind::AllGather,
                    "all_gather",
                    &[rows, h],
                    None,
                    None,
                    (rows * self.t * h) as u64,
                );
            }
            // `OverlappedRecompute` adds a recompute-prefetch thread, not a
            // wire change: the replay it hides is collective-free, so its
            // collective schedule is exactly `Overlapped`'s chunked one.
            OverlapPolicy::Overlapped { chunks }
            | OverlapPolicy::OverlappedRecompute { chunks } => {
                for j in 0..chunks {
                    let (a, b) = chunk_rows(rows, chunks, j);
                    e.collective(
                        self.group,
                        CollectiveKind::AllGather,
                        "all_gather",
                        &[b - a, h],
                        None,
                        Some((j, chunks)),
                        ((b - a) * self.t * h) as u64,
                    );
                }
            }
        }
    }

    /// `f̄`/`ḡ` forward: all-reduce (TP) or reduce-scatter (SP) of the full
    /// `[tokens, h]` partial sums. The SP reduce-scatter chunks under
    /// [`OverlapPolicy::Overlapped`], mirroring
    /// `Communicator::reduce_scatter_chunk`: the partition runs over the
    /// *result-shard* rows, and chunk `j`'s contribution (and tag shape) is
    /// `[t·(b−a), h]`. The TP all-reduce is unaffected by the policy, as in
    /// the runtime.
    fn exit_region_fwd(&self, e: &mut Emitter) {
        let h = self.cfg.hidden;
        let shape = [self.tokens(), h];
        let payload = (self.tokens() * h) as u64;
        match self.mode {
            StaticMode::Serial => {}
            StaticMode::TensorParallel => {
                e.collective(
                    self.group,
                    CollectiveKind::AllReduce,
                    "all_reduce",
                    &shape,
                    None,
                    None,
                    payload,
                );
            }
            StaticMode::TensorSequenceParallel => match self.overlap {
                OverlapPolicy::Exposed => {
                    e.collective(
                        self.group,
                        CollectiveKind::ReduceScatter,
                        "reduce_scatter",
                        &shape,
                        None,
                        None,
                        payload,
                    );
                }
                OverlapPolicy::Overlapped { chunks }
                | OverlapPolicy::OverlappedRecompute { chunks } => {
                    let shard_rows = self.rows();
                    for j in 0..chunks {
                        let (a, b) = chunk_rows(shard_rows, chunks, j);
                        e.collective(
                            self.group,
                            CollectiveKind::ReduceScatter,
                            "reduce_scatter",
                            &[self.t * (b - a), h],
                            None,
                            Some((j, chunks)),
                            (self.t * (b - a) * h) as u64,
                        );
                    }
                }
            },
        }
    }

    /// `f`/`g` backward: all-reduce (TP) or reduce-scatter (SP).
    fn enter_region_bwd(&self, e: &mut Emitter) {
        // Same wire signature as the forward exit.
        self.exit_region_fwd(e);
    }

    /// `f̄`/`ḡ` backward: identity (TP) or all-gather (SP).
    fn exit_region_bwd(&self, e: &mut Emitter) {
        self.enter_region_fwd(e);
    }

    /// Forward collectives + ledger records for one layer, in the runtime's
    /// order. Returns the allocation ids so the backward can free them.
    fn forward(&self, e: &mut Emitter) -> Vec<AllocId> {
        // Collectives fire inside `forward_full`, before the policy records
        // anything on the ledger.
        self.enter_region_fwd(e); // attention g
        self.exit_region_fwd(e); // attention f̄/ḡ
        self.enter_region_fwd(e); // MLP g
        self.exit_region_fwd(e); // MLP f̄/ḡ

        let h = self.cfg.hidden as u64;
        let t = self.t as u64;
        let rows = self.rows() as u64;
        let tokens = self.tokens() as u64;
        let rows_h = rows * h;
        let tokens_h = tokens * h;
        let shard_h = tokens_h / t;
        // One `[s, s]` score matrix per (batch, local head).
        let probs =
            (self.cfg.micro_batch * (self.cfg.heads / self.t) * self.cfg.seq * self.cfg.seq) as u64;
        // Under SP only the local LayerNorm-output shard is kept (the
        // paper's trick); under TP the gathered tensors are.
        let ln_out = if self.mode.sequence_parallel() { rows_h } else { tokens_h };

        let mut ids = Vec::new();
        let mut a = |e: &mut Emitter, c, n| ids.push(e.alloc(c, n));
        match self.policy {
            Recompute::Full => {
                // Only the checkpointed layer input survives.
                a(e, Category::LayerNormInput, rows_h);
            }
            Recompute::None | Recompute::Selective => {
                // `record_stored`, line for line.
                a(e, Category::LayerNormInput, rows_h);
                a(e, Category::SmallStatistics, 2 * rows);
                a(e, Category::QkvInput, ln_out);
                a(e, Category::QueryKey, 2 * shard_h);
                a(e, Category::Value, shard_h);
                if self.policy == Recompute::None {
                    a(e, Category::SoftmaxOutput, probs);
                    a(e, Category::SoftmaxDropoutMask, probs);
                    a(e, Category::SoftmaxDropoutOutput, probs);
                }
                a(e, Category::ProjectionInput, shard_h);
                a(e, Category::AttentionDropoutMask, rows_h);
                a(e, Category::LayerNormInput, rows_h);
                a(e, Category::SmallStatistics, 2 * rows);
                a(e, Category::MlpFirstInput, ln_out);
                a(e, Category::GeluInput, 4 * shard_h);
                a(e, Category::MlpSecondInput, 4 * shard_h);
                a(e, Category::MlpDropoutMask, rows_h);
            }
        }
        ids
    }

    /// Backward collectives for one layer, in the runtime's order.
    fn backward(&self, e: &mut Emitter) {
        if self.policy == Recompute::Full {
            // `LayerState::Checkpoint` replays the whole forward first.
            self.enter_region_fwd(e);
            self.exit_region_fwd(e);
            self.enter_region_fwd(e);
            self.exit_region_fwd(e);
        }
        // MLP half.
        self.exit_region_bwd(e); // d_m2: ḡ backward
        self.enter_region_fwd(e); // y2 re-gather (SP's extra all-gather)
        self.enter_region_bwd(e); // d_y_ln2
                                  // Attention half.
        self.exit_region_bwd(e); // d_o
        self.enter_region_fwd(e); // y1 re-gather
        self.enter_region_bwd(e); // d_y_ln1
                                  // SP's replicated-parameter gradient sync: six small all-reduces.
        if self.mode.sequence_parallel() {
            let hidden = self.cfg.hidden;
            for _ in 0..6 {
                e.collective(
                    self.group,
                    CollectiveKind::AllReduce,
                    "all_reduce",
                    &[hidden],
                    None,
                    None,
                    hidden as u64,
                );
            }
        }
    }
}

fn single_layer_ctx(
    cfg: &TransformerConfig,
    t: usize,
    sp: bool,
    policy: Recompute,
    overlap: OverlapPolicy,
) -> LayerCtx {
    cfg.validate(t);
    LayerCtx {
        cfg: *cfg,
        t,
        mode: StaticMode::select(t, sp),
        policy,
        overlap,
        group: GroupId::Tp { stage: 0 },
    }
}

/// Program for one layer's forward **and** backward pass on a `t`-wide
/// tensor-parallel group (no pipeline). The static counterpart of
/// `TransformerLayer::forward` + `backward` under `World::run(t, …)` with
/// the given [`OverlapPolicy`] installed on the layer.
pub fn layer_program(
    cfg: &TransformerConfig,
    t: usize,
    sequence_parallel: bool,
    policy: Recompute,
    overlap: OverlapPolicy,
) -> Program {
    layer_program_at_epoch(cfg, t, sequence_parallel, policy, overlap, 0)
}

/// [`layer_program`] extracted at a non-zero world-formation epoch — the
/// schedule an elastic re-formation runs after survivors re-form at a new
/// TP degree with `World::set_epoch(epoch)` installed. Structurally the
/// program is byte-for-byte a fresh `t`-wide program; only the `epoch`
/// coordinate of every tag differs, which is exactly what the reform proof
/// in `tests/elastic_reform.rs` pins down.
pub fn layer_program_at_epoch(
    cfg: &TransformerConfig,
    t: usize,
    sequence_parallel: bool,
    policy: Recompute,
    overlap: OverlapPolicy,
    epoch: u64,
) -> Program {
    let ctx = single_layer_ctx(cfg, t, sequence_parallel, policy, overlap);
    let ranks = (0..t)
        .map(|rank| {
            let mut e = Emitter::at_epoch(epoch);
            let ids = ctx.forward(&mut e);
            ctx.backward(&mut e);
            e.free_all(&ids);
            RankProgram { rank, ops: e.ops }
        })
        .collect();
    Program { tp: t, pp: 1, ranks }
}

/// Forward-only variant of [`layer_program`] (activations stay live), used
/// by the wire-byte pass to check the paper's forward-traffic equality.
pub fn layer_forward_program(
    cfg: &TransformerConfig,
    t: usize,
    sequence_parallel: bool,
    policy: Recompute,
    overlap: OverlapPolicy,
) -> Program {
    let ctx = single_layer_ctx(cfg, t, sequence_parallel, policy, overlap);
    let ranks = (0..t)
        .map(|rank| {
            let mut e = Emitter::new();
            let _ids = ctx.forward(&mut e);
            RankProgram { rank, ops: e.ops }
        })
        .collect();
    Program { tp: t, pp: 1, ranks }
}

/// Per-microbatch events shared by both pipeline extractors.
struct StageCtx {
    layer: LayerCtx,
    layers_here: usize,
}

impl StageCtx {
    fn rows_h(&self) -> u64 {
        (self.layer.rows() * self.layer.cfg.hidden) as u64
    }

    /// Forward of one microbatch on one (virtual) stage. `first`/`last` say
    /// whether this stage holds the embedding / the head; `prev`/`next` are
    /// global grid ranks for the stage-boundary transfers.
    #[allow(clippy::too_many_arguments)]
    fn forward_micro(
        &self,
        e: &mut Emitter,
        first: bool,
        last: bool,
        prev: usize,
        next: usize,
    ) -> Vec<AllocId> {
        let cfg = &self.layer.cfg;
        let mut ids = Vec::new();
        if first {
            ids.push(e.alloc(Category::EmbeddingDropoutMask, self.rows_h()));
        } else {
            e.recv(prev, self.rows_h());
        }
        for _ in 0..self.layers_here {
            ids.extend(self.layer.forward(e));
        }
        if last {
            let tokens_h = (cfg.tokens() * cfg.hidden) as u64;
            if self.layer.mode.sequence_parallel() {
                e.collective(
                    self.layer.group,
                    CollectiveKind::AllGather,
                    "all_gather",
                    &[self.layer.rows(), cfg.hidden],
                    None,
                    None,
                    tokens_h,
                );
            }
            // Final LayerNorm input, logits-projection input, fp32 logits
            // (Section 4.3). The head operates on the gathered full tensor.
            ids.push(e.alloc(Category::LayerNormInput, tokens_h));
            ids.push(e.alloc(Category::ProjectionInput, tokens_h));
            ids.push(e.alloc(Category::Logits, (cfg.tokens() * cfg.vocab) as u64));
        } else {
            e.send(next, self.rows_h());
        }
        ids
    }

    /// Backward of one microbatch; frees fire first, mirroring the
    /// executor's release-at-backward-start.
    fn backward_micro(
        &self,
        e: &mut Emitter,
        ids: &[AllocId],
        first: bool,
        last: bool,
        prev: usize,
        next: usize,
    ) {
        e.free_all(ids);
        if !last {
            e.recv(next, self.rows_h());
        }
        for _ in 0..self.layers_here {
            self.layer.backward(e);
        }
        if !first {
            e.send(prev, self.rows_h());
        }
    }

    /// Post-schedule events: SP embedding-gradient sync (embedding owner),
    /// tied-embedding exchange, grid loss broadcast.
    #[allow(clippy::too_many_arguments)]
    fn epilogue(
        &self,
        e: &mut Emitter,
        owns_embedding: bool,
        owns_head: bool,
        embedding_peer: usize,
        head_peer: usize,
        exchange_tied: bool,
        loss_root: usize,
    ) {
        let cfg = &self.layer.cfg;
        let table_elems = (cfg.vocab * cfg.hidden) as u64;
        if self.layer.mode.sequence_parallel() && owns_embedding {
            e.collective(
                self.layer.group,
                CollectiveKind::AllReduce,
                "all_reduce",
                &[cfg.vocab, cfg.hidden],
                None,
                None,
                table_elems,
            );
            e.collective(
                self.layer.group,
                CollectiveKind::AllReduce,
                "all_reduce",
                &[cfg.seq, cfg.hidden],
                None,
                None,
                (cfg.seq * cfg.hidden) as u64,
            );
        }
        if exchange_tied {
            if owns_head {
                e.send(embedding_peer, table_elems);
                e.recv(embedding_peer, table_elems);
            } else if owns_embedding {
                e.recv(head_peer, table_elems);
                e.send(head_peer, table_elems);
            }
        }
        e.collective(
            GroupId::Grid,
            CollectiveKind::Broadcast,
            "broadcast",
            &[],
            Some(loss_root),
            None,
            1,
        );
    }
}

/// Program for one full 1F1B training iteration on a `tp × pp` grid with
/// `n_micro` microbatches — the static counterpart of
/// `pipeline_exec::try_run_1f1b_iteration`, built from the executor's own
/// `stage_ops` order.
pub fn pipeline_1f1b_program(
    cfg: &TransformerConfig,
    tp: usize,
    pp: usize,
    sequence_parallel: bool,
    policy: Recompute,
    n_micro: usize,
) -> Program {
    cfg.validate(tp);
    assert!(n_micro > 0, "need at least one microbatch");
    assert_eq!(cfg.layers % pp, 0, "layers {} not divisible by pp {pp}", cfg.layers);
    let mode = StaticMode::select(tp, sequence_parallel);
    let mut ranks = Vec::with_capacity(pp * tp);
    for stage in 0..pp {
        for tp_rank in 0..tp {
            let ctx = StageCtx {
                layer: LayerCtx {
                    cfg: *cfg,
                    t: tp,
                    mode,
                    policy,
                    // The pipeline executors run layers with the default
                    // (exposed) policy.
                    overlap: OverlapPolicy::Exposed,
                    group: GroupId::Tp { stage },
                },
                layers_here: cfg.layers / pp,
            };
            let first = stage == 0;
            let last = stage == pp - 1;
            let prev = if first { 0 } else { (stage - 1) * tp + tp_rank };
            let next = (stage + 1) * tp + tp_rank;
            let mut e = Emitter::new();
            let mut micro_allocs: Vec<Vec<AllocId>> = vec![Vec::new(); n_micro];
            for (is_fwd, m) in stage_ops(stage, pp, n_micro) {
                if is_fwd {
                    micro_allocs[m] = ctx.forward_micro(&mut e, first, last, prev, next);
                } else {
                    ctx.backward_micro(&mut e, &micro_allocs[m], first, last, prev, next);
                }
            }
            ctx.epilogue(
                &mut e,
                first,
                last,
                tp_rank,                 // stage 0 peer of this tp_rank
                (pp - 1) * tp + tp_rank, // last-stage peer
                pp > 1,
                (pp - 1) * tp,
            );
            ranks.push(RankProgram { rank: stage * tp + tp_rank, ops: e.ops });
        }
    }
    Program { tp, pp, ranks }
}

/// Program for one **interleaved-schedule** iteration: each of `p` devices
/// holds `m_chunks` model chunks (virtual stage `v·p + device`), built from
/// the executor's own `interleaved_device_ops` order. Static counterpart of
/// `pipeline_exec::try_run_interleaved_iteration`.
///
/// Note the runtime executor discards its per-chunk scratch ledger, so the
/// analyzer is the only byte accounting for this schedule; the embedding
/// mask and head extras follow the same accounting as the 1F1B extractor.
pub fn interleaved_program(
    cfg: &TransformerConfig,
    tp: usize,
    p: usize,
    m_chunks: usize,
    sequence_parallel: bool,
    policy: Recompute,
    n_micro: usize,
) -> Program {
    cfg.validate(tp);
    let vstages = p * m_chunks;
    assert!(m_chunks > 0, "need at least one chunk");
    assert!(
        n_micro > 0 && n_micro.is_multiple_of(p),
        "microbatches ({n_micro}) must be a multiple of devices ({p})"
    );
    assert_eq!(cfg.layers % vstages, 0, "layers {} not divisible by p·m = {vstages}", cfg.layers);
    let mode = StaticMode::select(tp, sequence_parallel);
    let mut ranks = Vec::with_capacity(p * tp);
    for device in 0..p {
        for tp_rank in 0..tp {
            let ctx = StageCtx {
                layer: LayerCtx {
                    cfg: *cfg,
                    t: tp,
                    mode,
                    policy,
                    overlap: OverlapPolicy::Exposed,
                    group: GroupId::Tp { stage: device },
                },
                layers_here: cfg.layers / vstages,
            };
            // Wrap-around ring: the previous virtual stage lives one device
            // back, the next one device forward.
            let prev = ((device + p - 1) % p) * tp + tp_rank;
            let next = ((device + 1) % p) * tp + tp_rank;
            let mut e = Emitter::new();
            let mut allocs: Vec<Vec<Vec<AllocId>>> = vec![vec![Vec::new(); n_micro]; m_chunks];
            for (is_fwd, v, mb) in interleaved_device_ops(device, p, m_chunks, n_micro) {
                let vs = v * p + device;
                let first = vs == 0;
                let last = vs == vstages - 1;
                if is_fwd {
                    allocs[v][mb] = ctx.forward_micro(&mut e, first, last, prev, next);
                } else {
                    ctx.backward_micro(&mut e, &allocs[v][mb], first, last, prev, next);
                }
            }
            ctx.epilogue(
                &mut e,
                device == 0,
                device == p - 1,
                tp_rank,
                (p - 1) * tp + tp_rank,
                p > 1,
                (p - 1) * tp,
            );
            ranks.push(RankProgram { rank: device * tp + tp_rank, ops: e.ops });
        }
    }
    Program { tp, pp: p, ranks }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_kinds(p: &Program, rank: usize) -> Vec<(CollectiveKind, usize)> {
        let mut out: std::collections::BTreeMap<CollectiveKind, usize> = Default::default();
        for op in &p.ranks[rank].ops {
            if let ScheduleOp::Collective { kind, .. } = op {
                *out.entry(*kind).or_default() += 1;
            }
        }
        out.into_iter().collect()
    }

    #[test]
    fn tp_layer_is_four_all_reduces() {
        // Section 4.2.1: 4 all-reduces per layer per full pass (2 fwd, 2 bwd).
        let cfg = TransformerConfig::tiny();
        let p = layer_program(&cfg, 2, false, Recompute::None, OverlapPolicy::Exposed);
        assert_eq!(count_kinds(&p, 0), vec![(CollectiveKind::AllReduce, 4)]);
    }

    #[test]
    fn tp_sp_layer_matches_pinned_runtime_counts() {
        // Pinned by the runtime parallel-equivalence tests: 6 AG + 4 RS +
        // 6 AR (the last six are the small replicated-gradient syncs).
        let cfg = TransformerConfig::tiny();
        let p = layer_program(&cfg, 2, true, Recompute::None, OverlapPolicy::Exposed);
        assert_eq!(
            count_kinds(&p, 0),
            vec![
                (CollectiveKind::AllReduce, 6),
                (CollectiveKind::AllGather, 6),
                (CollectiveKind::ReduceScatter, 4),
            ]
        );
    }

    #[test]
    fn serial_layer_has_no_collectives() {
        let cfg = TransformerConfig::tiny();
        let p = layer_program(&cfg, 1, false, Recompute::None, OverlapPolicy::Exposed);
        assert!(count_kinds(&p, 0).is_empty());
        // Every alloc is freed.
        let allocs =
            p.ranks[0].ops.iter().filter(|o| matches!(o, ScheduleOp::Alloc { .. })).count();
        let frees = p.ranks[0].ops.iter().filter(|o| matches!(o, ScheduleOp::Free { .. })).count();
        assert_eq!(allocs, frees);
    }

    #[test]
    fn full_recompute_replays_forward_collectives_in_backward() {
        let cfg = TransformerConfig::tiny();
        let p = layer_program(&cfg, 2, false, Recompute::Full, OverlapPolicy::Exposed);
        // 2 fwd + (2 replay + 2 bwd) = 6 all-reduces.
        assert_eq!(count_kinds(&p, 0), vec![(CollectiveKind::AllReduce, 6)]);
    }

    #[test]
    fn pipeline_program_shapes() {
        let cfg = TransformerConfig::tiny(); // 2 layers
        let p = pipeline_1f1b_program(&cfg, 2, 2, false, Recompute::None, 3);
        assert_eq!(p.ranks.len(), 4);
        // Stage 0 sends 3 forward activations and receives 3 gradients.
        let sends = p.ranks[0].ops.iter().filter(|o| matches!(o, ScheduleOp::Send { .. })).count();
        let recvs = p.ranks[0].ops.iter().filter(|o| matches!(o, ScheduleOp::Recv { .. })).count();
        // 3 micro sends + 1 tied-embedding send; 3 micro recvs + 1 tied recv.
        assert_eq!((sends, recvs), (4, 4));
    }
}
