//! Static wire-byte accounting.
//!
//! Rebuilds each rank's [`CommStats`] from the schedule IR alone, using the
//! exact recording rules of the runtime communicators: a collective records
//! its stats-ledger payload with the group's size, a send records a
//! [`CollectiveKind::SendRecv`] entry with the *grid* communicator's size
//! (the channel the runtime sends on), and a recv records nothing. Because
//! both sides share [`CommStats::record`] and
//! [`CollectiveKind::ring_wire_bytes`], the static ledgers are comparable
//! to the runtime's `comm.stats()` with `==` — and the paper's "sequence
//! parallelism costs no extra wire bytes" claim becomes a statically
//! checkable equality between the TP and TP+SP programs.

use crate::ir::{Program, RankProgram, ScheduleOp};
use mt_collectives::{CollectiveKind, CommStats};

/// Rebuilds one rank's communication ledger from its program. `program`
/// supplies group sizes (collectives use their group's size; sends use the
/// grid size, as the runtime's stage-boundary channels do).
pub fn rank_comm_stats(rank: &RankProgram, program: &Program) -> CommStats {
    let grid_size = (program.tp * program.pp) as u64;
    let mut stats = CommStats::new();
    for op in &rank.ops {
        match op {
            ScheduleOp::Collective { group, kind, payload_elems, .. } => {
                stats.record(*kind, *payload_elems, program.group_size(*group) as u64);
            }
            ScheduleOp::Send { elems, .. } => {
                stats.record(CollectiveKind::SendRecv, *elems, grid_size);
            }
            // The runtime charges a send/recv pair to the sender only.
            ScheduleOp::Recv { .. } => {}
            ScheduleOp::Alloc { .. } | ScheduleOp::Free { .. } => {}
        }
    }
    stats
}

/// Per-rank communication ledgers for a whole program, indexed by global
/// rank.
pub fn program_comm_stats(program: &Program) -> Vec<CommStats> {
    program.ranks.iter().map(|r| rank_comm_stats(r, program)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{layer_forward_program, layer_program};
    use mt_model::OverlapPolicy;
    use mt_model::TransformerConfig;

    /// Section 4.2.2: per layer and rank, the TP forward pass all-reduces
    /// twice; the TP+SP forward pass replaces each with an all-gather +
    /// reduce-scatter conjugate pair of the same logical tensor. Ring wire
    /// bytes must come out identical.
    #[test]
    fn sp_forward_wire_bytes_equal_tp() {
        let cfg = TransformerConfig::tiny();
        let t = 2;
        for policy in [
            mt_memory::Recompute::None,
            mt_memory::Recompute::Selective,
            mt_memory::Recompute::Full,
        ] {
            let tp = layer_forward_program(&cfg, t, false, policy, OverlapPolicy::Exposed);
            let sp = layer_forward_program(&cfg, t, true, policy, OverlapPolicy::Exposed);
            for rank in 0..t {
                let tp_stats = rank_comm_stats(&tp.ranks[rank], &tp);
                let sp_stats = rank_comm_stats(&sp.ranks[rank], &sp);
                assert_eq!(
                    tp_stats.total_wire_bytes(),
                    sp_stats.total_wire_bytes(),
                    "policy {policy:?} rank {rank}"
                );
            }
        }
    }

    /// Chunking must not change total traffic: the `chunk_rows` partition
    /// is exact and every chunk payload carries the group-size factor, so
    /// the per-chunk ring wire bytes sum to the whole-tensor figure — and
    /// the Section 4.2.2 equality with TP survives any chunk count,
    /// including ragged partitions and more chunks than shard rows.
    #[test]
    fn chunked_sp_wire_bytes_equal_exposed_and_tp() {
        let cfg = TransformerConfig::tiny();
        let t = 2;
        let policy = mt_memory::Recompute::None;
        let tp = layer_forward_program(&cfg, t, false, policy, OverlapPolicy::Exposed);
        let exposed = layer_forward_program(&cfg, t, true, policy, OverlapPolicy::Exposed);
        for chunks in [1usize, 2, 3, 7] {
            let sp =
                layer_forward_program(&cfg, t, true, policy, OverlapPolicy::Overlapped { chunks });
            for rank in 0..t {
                let sp_stats = rank_comm_stats(&sp.ranks[rank], &sp);
                assert_eq!(
                    sp_stats.total_wire_bytes(),
                    rank_comm_stats(&tp.ranks[rank], &tp).total_wire_bytes(),
                    "chunks={chunks} rank {rank} vs TP"
                );
                assert_eq!(
                    sp_stats.total_wire_bytes(),
                    rank_comm_stats(&exposed.ranks[rank], &exposed).total_wire_bytes(),
                    "chunks={chunks} rank {rank} vs exposed SP"
                );
            }
        }
    }

    /// The backward pass is *not* byte-identical: SP re-gathers two saved
    /// shards and all-reduces the six replicated small gradients. The static
    /// ledgers must show exactly that excess and nothing else.
    #[test]
    fn sp_backward_excess_is_the_regathers_plus_small_grads() {
        let cfg = TransformerConfig::tiny();
        let t = 2usize;
        let tp = layer_program(&cfg, t, false, mt_memory::Recompute::None, OverlapPolicy::Exposed);
        let sp = layer_program(&cfg, t, true, mt_memory::Recompute::None, OverlapPolicy::Exposed);
        let tp_stats = rank_comm_stats(&tp.ranks[0], &tp);
        let sp_stats = rank_comm_stats(&sp.ranks[0], &sp);
        let tokens_h = (cfg.tokens() * cfg.hidden) as u64;
        let n = t as u64;
        // Two re-gather all-gathers of [tokens, h] …
        let regather =
            2 * CollectiveKind::AllGather.ring_wire_bytes(tokens_h * mt_collectives::FP16_BYTES, n);
        // … plus six all-reduces of [h].
        let small_grads = 6 * CollectiveKind::AllReduce
            .ring_wire_bytes(cfg.hidden as u64 * mt_collectives::FP16_BYTES, n);
        assert_eq!(
            sp_stats.total_wire_bytes(),
            tp_stats.total_wire_bytes() + regather + small_grads
        );
    }
}
