//! JSON behavior of [`MetricsSnapshot`]: deterministic flat dumps and
//! lossless serde round trips for every metric variant, including the
//! exact-bucket histogram.

use mt_trace::{Histogram, Metric, MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS};

fn populated_registry() -> MetricsRegistry {
    let r = MetricsRegistry::new();
    r.counter_add("comm.all_reduce.calls", 7);
    r.gauge_set("step.exposed_frac", 0.125);
    r.high_water("alloc.peak_bytes", 4096);
    for v in [1u64, 2, 3, 500, 70_000] {
        r.histogram_record("comm.all_reduce.latency_us", v);
    }
    r
}

#[test]
fn flat_json_key_order_is_deterministic_and_sorted() {
    let snap = populated_registry().snapshot();
    let flat = snap.flat_json();
    let serde_json::Value::Object(pairs) = &flat else {
        panic!("flat dump must be an object");
    };
    let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
    // Insertion order is the dump order; it must be fully sorted, with the
    // histogram flattened into sorted derived-suffix keys in place.
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "flat_json keys must be lexicographically ordered");
    assert_eq!(
        keys,
        vec![
            "alloc.peak_bytes",
            "comm.all_reduce.calls",
            "comm.all_reduce.latency_us.count",
            "comm.all_reduce.latency_us.max",
            "comm.all_reduce.latency_us.p50",
            "comm.all_reduce.latency_us.p95",
            "comm.all_reduce.latency_us.p99",
            "comm.all_reduce.latency_us.sum",
            "step.exposed_frac",
        ]
    );
    // Two snapshots of the same registry render identically.
    let again = populated_registry().snapshot().flat_json();
    assert_eq!(serde_json::to_string(&flat).unwrap(), serde_json::to_string(&again).unwrap());
}

#[test]
fn snapshot_round_trips_through_serde_json() {
    let snap = populated_registry().snapshot();
    let text = serde_json::to_string_pretty(&snap).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
    assert_eq!(back, snap, "serde round trip must be lossless");
    assert_eq!(back.get("comm.all_reduce.calls"), Some(Metric::Counter(7)));
    assert_eq!(back.get("step.exposed_frac"), Some(Metric::Gauge(0.125)));
    assert_eq!(back.get("alloc.peak_bytes"), Some(Metric::HighWater(4096)));
}

#[test]
fn histogram_serialization_preserves_buckets_and_quantiles() {
    let snap = populated_registry().snapshot();
    let text = serde_json::to_string(&snap).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
    let Some(Metric::Histogram(h)) = back.get("comm.all_reduce.latency_us") else {
        panic!("histogram variant must survive the round trip");
    };
    assert_eq!(h.count, 5);
    assert_eq!(h.sum, 70_506);
    assert_eq!(h.max, 70_000);
    assert_eq!(h.counts.iter().sum::<u64>(), h.count);
    // Quantiles are pure functions of the (round-tripped) counts.
    assert_eq!(h.p50(), 3);
    assert_eq!(h.p99(), 70_000);
    let flat = snap.flat_json();
    assert_eq!(flat["comm.all_reduce.latency_us.count"], 5u64);
    assert_eq!(flat["comm.all_reduce.latency_us.p50"], 3u64);
    assert_eq!(flat["comm.all_reduce.latency_us.max"], 70_000u64);
}

#[test]
fn histogram_rejects_malformed_bucket_arrays() {
    let mut h = Histogram::new();
    h.record(9);
    let v = serde_json::to_value(&Metric::Histogram(h));
    let good: Metric = serde_json::from_value(&v).unwrap();
    assert_eq!(good, Metric::Histogram(h));
    // Truncating the bucket array must fail deserialization, not silently
    // zero-fill.
    let text = serde_json::to_string(&h).unwrap();
    let truncated = text.replacen("1,", "", 1);
    assert_ne!(text, truncated, "test fixture must actually drop a bucket");
    assert!(serde_json::from_str::<Histogram>(&truncated).is_err());
    let _ = HISTOGRAM_BUCKETS;
}
