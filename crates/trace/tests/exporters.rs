//! Exporter contract tests: the Chrome-trace JSON shape against a golden
//! structure, and the metrics dump's serde round trip.

use mt_trace::export::{chrome_trace, chrome_trace_string, validate_chrome_trace};
use mt_trace::{ArgValue, MetricsRegistry, MetricsSnapshot, Tracer};

/// Builds a deterministic trace: two ranks, nested spans, a counter.
fn deterministic_trace() -> Tracer {
    let t = Tracer::enabled();
    t.complete_at("step", 0, 0.0, 1000.0, vec![("step", ArgValue::U64(0))]);
    t.complete_at("forward", 0, 10.0, 400.0, Vec::new());
    t.complete_at("backward", 0, 420.0, 500.0, Vec::new());
    t.complete_at(
        "all_reduce",
        1,
        100.0,
        50.0,
        vec![("payload_bytes", ArgValue::U64(2048)), ("wire_bytes", ArgValue::U64(3072))],
    );
    t.counter_at("allocator.allocated", 0, 500.0, 4096.0);
    t
}

#[test]
fn golden_chrome_trace_shape() {
    // The exporter's output, parsed back from its own JSON text, must match
    // the golden structure below field-for-field. This pins the exact
    // trace_event dialect we emit (complete "X" events, counter "C" events,
    // microsecond ts/dur, pid 0, tid = track).
    let text = chrome_trace_string(&deterministic_trace().events());
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("exporter emits JSON");
    validate_chrome_trace(&parsed).expect("structurally valid trace");

    let golden = r#"[
      {"name":"step","cat":"span","pid":0,"tid":0,"ts":0.0,"ph":"X","dur":1000.0,
       "args":{"step":0}},
      {"name":"forward","cat":"span","pid":0,"tid":0,"ts":10.0,"ph":"X","dur":400.0},
      {"name":"backward","cat":"span","pid":0,"tid":0,"ts":420.0,"ph":"X","dur":500.0},
      {"name":"all_reduce","cat":"span","pid":0,"tid":1,"ts":100.0,"ph":"X","dur":50.0,
       "args":{"payload_bytes":2048,"wire_bytes":3072}},
      {"name":"allocator.allocated","cat":"counter","pid":0,"tid":0,"ts":500.0,"ph":"C",
       "args":{"value":4096.0}}
    ]"#;
    let golden: serde_json::Value = serde_json::from_str(golden).expect("golden parses");
    let (arr, garr) = (parsed.as_array().unwrap(), golden.as_array().unwrap());
    assert_eq!(arr.len(), garr.len(), "event count");
    for (i, (a, g)) in arr.iter().zip(garr).enumerate() {
        for key in ["name", "cat", "pid", "tid", "ts", "ph", "dur", "args"] {
            assert_eq!(
                a.get(key).cloned().unwrap_or(serde_json::Value::Null),
                g.get(key).cloned().unwrap_or(serde_json::Value::Null),
                "event {i} field {key:?}"
            );
        }
    }
}

#[test]
fn every_complete_event_is_balanced() {
    // "Balanced" for complete events: every X carries both ts and dur and
    // nests cleanly per tid — checked by the validator over a trace with
    // real (wall-clock) nested spans, not synthetic timestamps.
    let t = Tracer::enabled();
    for rank in 0..3u32 {
        let r = t.with_track(rank);
        let _outer = r.span("outer");
        for _ in 0..4 {
            let _inner = r.span("inner");
            let _leaf = r.span_args("leaf", || vec![("k", ArgValue::Bool(true))]);
        }
    }
    let v = chrome_trace(&t.events());
    validate_chrome_trace(&v).expect("nested real spans validate");
    let arr = v.as_array().unwrap();
    assert_eq!(arr.len(), 3 * (1 + 4 * 2));
    for e in arr {
        assert_eq!(e["ph"], "X");
        assert!(e["dur"].as_f64().unwrap() >= 0.0);
        assert!(e["ts"].as_f64().unwrap() >= 0.0);
    }
}

#[test]
fn metrics_dump_round_trips_through_serde() {
    let reg = MetricsRegistry::new();
    reg.counter_add("comm.all_reduce.calls", 12);
    reg.counter_add("comm.all_reduce.wire_bytes", 98_304);
    reg.gauge_set("allocator.fragmentation", 0.125);
    reg.high_water("allocator.peak_footprint", 1 << 30);
    reg.high_water("ledger.paper_bytes", 123_456_789);

    let snap = reg.snapshot();
    let text = serde_json::to_string_pretty(&snap).expect("snapshot serializes");
    let back: MetricsSnapshot = serde_json::from_str(&text).expect("snapshot deserializes");
    assert_eq!(back, snap, "lossless round trip");

    // The flat dump keeps the same names with plain numeric values.
    let flat = snap.flat_json();
    assert_eq!(flat["comm.all_reduce.wire_bytes"], 98_304u64);
    assert_eq!(flat["allocator.fragmentation"], 0.125);
    assert_eq!(flat["allocator.peak_footprint"], (1u64 << 30));
}
