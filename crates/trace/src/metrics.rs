//! The typed metrics registry.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// A single published metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Metric {
    /// Monotonically increasing count (calls, bytes moved).
    Counter(u64),
    /// Last-write-wins sampled value.
    Gauge(f64),
    /// Maximum ever observed (peak bytes, peak in-flight).
    HighWater(u64),
}

impl Metric {
    /// The value as a float, whatever the variant.
    pub fn as_f64(self) -> f64 {
        match self {
            Metric::Counter(v) | Metric::HighWater(v) => v as f64,
            Metric::Gauge(v) => v,
        }
    }

    /// The value as an integer; gauges are truncated.
    pub fn as_u64(self) -> u64 {
        match self {
            Metric::Counter(v) | Metric::HighWater(v) => v,
            Metric::Gauge(v) => v as u64,
        }
    }
}

/// A shared, thread-safe registry of named metrics.
///
/// Names are dotted paths by convention (`comm.all_reduce.wire_bytes`,
/// `allocator.peak_footprint`). Publishers — `CommStats`,
/// `AllocatorStats`, the activation ledger — write their totals here so one
/// snapshot captures the whole system. Clones share the same store.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with<R>(&self, f: impl FnOnce(&mut BTreeMap<String, Metric>) -> R) -> R {
        f(&mut self.inner.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Adds `delta` to a counter, creating it at zero.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.with(|m| match m.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric {name:?} is {other:?}, not a counter"),
        });
    }

    /// Sets a gauge to `value`, creating it if needed.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.with(|m| match m.entry(name.to_string()).or_insert(Metric::Gauge(value)) {
            Metric::Gauge(v) => *v = value,
            other => panic!("metric {name:?} is {other:?}, not a gauge"),
        });
    }

    /// Raises a high-water mark to `value` if it exceeds the stored peak,
    /// creating it if needed.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn high_water(&self, name: &str, value: u64) {
        self.with(|m| match m.entry(name.to_string()).or_insert(Metric::HighWater(value)) {
            Metric::HighWater(v) => *v = (*v).max(value),
            other => panic!("metric {name:?} is {other:?}, not a high-water mark"),
        });
    }

    /// Reads one metric.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.with(|m| m.get(name).copied())
    }

    /// An owned, serializable copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot { metrics: self.with(|m| m.clone()) }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`], serializable for report
/// files and round-trippable through JSON.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Name → metric, sorted by name.
    pub metrics: BTreeMap<String, Metric>,
}

impl MetricsSnapshot {
    /// Reads one metric.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.metrics.get(name).copied()
    }

    /// The flat `name → number` JSON object used for `reports/` dumps
    /// (type information dropped; use serde on the snapshot itself for a
    /// lossless round trip).
    pub fn flat_json(&self) -> serde_json::Value {
        serde_json::Value::Object(
            self.metrics
                .iter()
                .map(|(name, metric)| {
                    let v = match metric {
                        Metric::Counter(c) => serde_json::to_value(c),
                        Metric::HighWater(h) => serde_json::to_value(h),
                        Metric::Gauge(g) => serde_json::to_value(g),
                    };
                    (name.clone(), v)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_gauges_overwrite_highwater_maxes() {
        let r = MetricsRegistry::new();
        r.counter_add("calls", 2);
        r.counter_add("calls", 3);
        r.gauge_set("temp", 1.5);
        r.gauge_set("temp", 0.5);
        r.high_water("peak", 10);
        r.high_water("peak", 7);
        r.high_water("peak", 12);
        assert_eq!(r.get("calls"), Some(Metric::Counter(5)));
        assert_eq!(r.get("temp"), Some(Metric::Gauge(0.5)));
        assert_eq!(r.get("peak"), Some(Metric::HighWater(12)));
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn clones_share_the_store() {
        let r = MetricsRegistry::new();
        let r2 = r.clone();
        r.counter_add("n", 1);
        r2.counter_add("n", 1);
        assert_eq!(r.get("n"), Some(Metric::Counter(2)));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let r = MetricsRegistry::new();
        r.gauge_set("x", 1.0);
        r.counter_add("x", 1);
    }

    #[test]
    fn flat_json_is_name_to_number() {
        let r = MetricsRegistry::new();
        r.counter_add("a.calls", 4);
        r.gauge_set("b.frac", 0.25);
        r.high_water("c.peak", 9);
        let flat = r.snapshot().flat_json();
        assert_eq!(flat["a.calls"], 4u64);
        assert_eq!(flat["b.frac"], 0.25);
        assert_eq!(flat["c.peak"], 9u64);
    }
}
