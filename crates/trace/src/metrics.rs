//! The typed metrics registry.

use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Number of fixed buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 40;

/// An exact-bucket histogram over non-negative integer samples
/// (microseconds, bytes, …).
///
/// Bucket edges are **fixed powers of two**, so two histograms recorded on
/// different machines (or merged across ranks) are directly comparable and
/// every quantile is a deterministic function of the counts alone:
///
/// * bucket `0` holds the exact value `0`;
/// * bucket `i ≥ 1` holds `2^(i-1) ..= 2^i - 1`;
/// * the last bucket (`i = 39`) is open-ended.
///
/// Quantiles use the nearest-rank rule over bucket counts and report the
/// bucket's inclusive upper edge, clamped to the exact observed maximum —
/// so `p50/p95/p99` never exceed `max` and are bit-stable across
/// serialization round trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts (fixed power-of-two edges, see type docs).
    pub counts: [u64; HISTOGRAM_BUCKETS],
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The inclusive upper edge of bucket `i` (`u64::MAX` for the
    /// open-ended last bucket).
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            _ if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into `self` (cross-rank aggregation).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank quantile from the bucket counts, `q` in `[0, 1]`.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (nearest-rank over buckets).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (nearest-rank over buckets).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (nearest-rank over buckets).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

// Manual serde impls: the vendored serde derives `Deserialize` for `Vec`
// but not for fixed-size arrays, so the bucket array round-trips through a
// length-checked `Vec<u64>`.
impl Serialize for Histogram {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("counts".to_string(), self.counts.to_value()),
            ("count".to_string(), self.count.to_value()),
            ("sum".to_string(), self.sum.to_value()),
            ("max".to_string(), self.max.to_value()),
        ])
    }
}

impl Deserialize for Histogram {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let Value::Object(pairs) = v else {
            return Err(DeError::new(format!("expected histogram object, found {v:?}")));
        };
        let field = |name: &str| {
            pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("histogram missing field {name:?}")))
        };
        let counts_vec = Vec::<u64>::from_value(field("counts")?)?;
        if counts_vec.len() != HISTOGRAM_BUCKETS {
            return Err(DeError::new(format!(
                "histogram expects {HISTOGRAM_BUCKETS} buckets, found {}",
                counts_vec.len()
            )));
        }
        let mut counts = [0u64; HISTOGRAM_BUCKETS];
        counts.copy_from_slice(&counts_vec);
        Ok(Histogram {
            counts,
            count: u64::from_value(field("count")?)?,
            sum: u64::from_value(field("sum")?)?,
            max: u64::from_value(field("max")?)?,
        })
    }
}

/// A single published metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)] // Copy is the registry contract; boxing the buckets would break it
pub enum Metric {
    /// Monotonically increasing count (calls, bytes moved).
    Counter(u64),
    /// Last-write-wins sampled value.
    Gauge(f64),
    /// Maximum ever observed (peak bytes, peak in-flight).
    HighWater(u64),
    /// Distribution of integer samples with fixed power-of-two buckets
    /// (per-collective latency, per-kernel-tile duration).
    Histogram(Histogram),
}

impl Metric {
    /// The value as a float, whatever the variant; histograms report their
    /// sample sum.
    pub fn as_f64(self) -> f64 {
        match self {
            Metric::Counter(v) | Metric::HighWater(v) => v as f64,
            Metric::Gauge(v) => v,
            Metric::Histogram(h) => h.sum as f64,
        }
    }

    /// The value as an integer; gauges are truncated, histograms report
    /// their sample sum.
    pub fn as_u64(self) -> u64 {
        match self {
            Metric::Counter(v) | Metric::HighWater(v) => v,
            Metric::Gauge(v) => v as u64,
            Metric::Histogram(h) => h.sum,
        }
    }
}

/// A shared, thread-safe registry of named metrics.
///
/// Names are dotted paths by convention (`comm.all_reduce.wire_bytes`,
/// `allocator.peak_footprint`). Publishers — `CommStats`,
/// `AllocatorStats`, the activation ledger — write their totals here so one
/// snapshot captures the whole system. Clones share the same store.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with<R>(&self, f: impl FnOnce(&mut BTreeMap<String, Metric>) -> R) -> R {
        f(&mut self.inner.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Adds `delta` to a counter, creating it at zero.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.with(|m| match m.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric {name:?} is {other:?}, not a counter"),
        });
    }

    /// Sets a gauge to `value`, creating it if needed.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.with(|m| match m.entry(name.to_string()).or_insert(Metric::Gauge(value)) {
            Metric::Gauge(v) => *v = value,
            other => panic!("metric {name:?} is {other:?}, not a gauge"),
        });
    }

    /// Raises a high-water mark to `value` if it exceeds the stored peak,
    /// creating it if needed.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn high_water(&self, name: &str, value: u64) {
        self.with(|m| match m.entry(name.to_string()).or_insert(Metric::HighWater(value)) {
            Metric::HighWater(v) => *v = (*v).max(value),
            other => panic!("metric {name:?} is {other:?}, not a high-water mark"),
        });
    }

    /// Records one sample into a histogram, creating it empty.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram_record(&self, name: &str, value: u64) {
        self.with(|m| {
            match m.entry(name.to_string()).or_insert(Metric::Histogram(Histogram::new())) {
                Metric::Histogram(h) => h.record(value),
                other => panic!("metric {name:?} is {other:?}, not a histogram"),
            }
        });
    }

    /// Reads one metric.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.with(|m| m.get(name).copied())
    }

    /// An owned, serializable copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot { metrics: self.with(|m| m.clone()) }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`], serializable for report
/// files and round-trippable through JSON.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Name → metric, sorted by name.
    pub metrics: BTreeMap<String, Metric>,
}

impl MetricsSnapshot {
    /// Reads one metric.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.metrics.get(name).copied()
    }

    /// The flat `name → number` JSON object used for `reports/` dumps
    /// (type information dropped; use serde on the snapshot itself for a
    /// lossless round trip). Histograms flatten to derived summary keys —
    /// `name.count`, `name.sum`, `name.max`, `name.p50`, `name.p95`,
    /// `name.p99` — all computed deterministically from the bucket counts.
    pub fn flat_json(&self) -> serde_json::Value {
        serde_json::Value::Object(
            self.metrics
                .iter()
                .flat_map(|(name, metric)| match metric {
                    Metric::Counter(c) => vec![(name.clone(), serde_json::to_value(c))],
                    Metric::HighWater(h) => vec![(name.clone(), serde_json::to_value(h))],
                    Metric::Gauge(g) => vec![(name.clone(), serde_json::to_value(g))],
                    // Suffixes stay in sorted order so the whole flat dump
                    // remains lexicographically ordered.
                    Metric::Histogram(h) => vec![
                        (format!("{name}.count"), serde_json::to_value(&h.count)),
                        (format!("{name}.max"), serde_json::to_value(&h.max)),
                        (format!("{name}.p50"), serde_json::to_value(&h.p50())),
                        (format!("{name}.p95"), serde_json::to_value(&h.p95())),
                        (format!("{name}.p99"), serde_json::to_value(&h.p99())),
                        (format!("{name}.sum"), serde_json::to_value(&h.sum)),
                    ],
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_gauges_overwrite_highwater_maxes() {
        let r = MetricsRegistry::new();
        r.counter_add("calls", 2);
        r.counter_add("calls", 3);
        r.gauge_set("temp", 1.5);
        r.gauge_set("temp", 0.5);
        r.high_water("peak", 10);
        r.high_water("peak", 7);
        r.high_water("peak", 12);
        assert_eq!(r.get("calls"), Some(Metric::Counter(5)));
        assert_eq!(r.get("temp"), Some(Metric::Gauge(0.5)));
        assert_eq!(r.get("peak"), Some(Metric::HighWater(12)));
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn clones_share_the_store() {
        let r = MetricsRegistry::new();
        let r2 = r.clone();
        r.counter_add("n", 1);
        r2.counter_add("n", 1);
        assert_eq!(r.get("n"), Some(Metric::Counter(2)));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let r = MetricsRegistry::new();
        r.gauge_set("x", 1.0);
        r.counter_add("x", 1);
    }

    #[test]
    fn histogram_buckets_are_fixed_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // Every bucket's upper edge lands back in that bucket.
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_upper(i)), i);
            assert_eq!(Histogram::bucket_index(Histogram::bucket_upper(i) + 1), i + 1);
        }
    }

    #[test]
    fn histogram_quantiles_derive_from_counts() {
        let mut h = Histogram::new();
        assert_eq!(h.p50(), 0);
        for v in [0u64, 1, 2, 3, 5, 9, 17, 100, 1000, 40_000] {
            h.record(v);
        }
        assert_eq!(h.count, 10);
        assert_eq!(h.sum, 41_137);
        assert_eq!(h.max, 40_000);
        // Nearest-rank p50 = 5th sample = 5 → bucket [4,7] → upper edge 7.
        assert_eq!(h.p50(), 7);
        // p99 → 10th sample = 40000 → bucket upper 65535 clamps to max.
        assert_eq!(h.p99(), 40_000);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 40_000);

        let mut merged = Histogram::new();
        merged.record(2);
        merged.merge(&h);
        assert_eq!(merged.count, 11);
        assert_eq!(merged.sum, 41_139);
        assert_eq!(merged.max, 40_000);
    }

    #[test]
    fn registry_histogram_records_and_type_checks() {
        let r = MetricsRegistry::new();
        r.histogram_record("lat", 3);
        r.histogram_record("lat", 9);
        let Some(Metric::Histogram(h)) = r.get("lat") else {
            panic!("expected a histogram");
        };
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 12);
        assert_eq!(h.max, 9);
        assert_eq!(r.get("lat").unwrap().as_u64(), 12, "histograms surface their sum");
    }

    #[test]
    #[should_panic(expected = "not a histogram")]
    fn histogram_type_confusion_panics() {
        let r = MetricsRegistry::new();
        r.counter_add("x", 1);
        r.histogram_record("x", 1);
    }

    #[test]
    fn flat_json_is_name_to_number() {
        let r = MetricsRegistry::new();
        r.counter_add("a.calls", 4);
        r.gauge_set("b.frac", 0.25);
        r.high_water("c.peak", 9);
        let flat = r.snapshot().flat_json();
        assert_eq!(flat["a.calls"], 4u64);
        assert_eq!(flat["b.frac"], 0.25);
        assert_eq!(flat["c.peak"], 9u64);
    }
}
