//! `mt-trace`: structured tracing and metrics for the training stack.
//!
//! Three pieces, deliberately dependency-free beyond serde:
//!
//! * [`Tracer`] — produces nested **spans** (scoped begin/end intervals) and
//!   **instant events**, each attributed to a *track* (a rank or thread
//!   lane). A disabled tracer ([`Tracer::disabled`]) costs one `Option`
//!   check per call and allocates nothing, so instrumentation can stay in
//!   hot paths permanently.
//! * [`MetricsRegistry`] — a typed registry of counters, gauges, and
//!   high-water marks that the runtime's existing ledgers (`CommStats`,
//!   `AllocatorStats`, `ActivationLedger`) publish into, giving one flat
//!   namespace for everything measurable.
//! * [`export`] — converts recorded events into the Chrome `trace_event`
//!   JSON format (loadable in `chrome://tracing` / Perfetto), a per-rank
//!   ASCII timeline for terminals, and a flat JSON metrics dump for
//!   `reports/`.
//!
//! Instrumented call sites that cannot thread a `Tracer` through their
//! signatures (deep model internals) use the thread-local *current tracer*:
//! [`install`] a tracer for a scope and [`current`] returns it (or a
//! disabled tracer when none is installed).

mod export_impl;
mod metrics;
mod tracer;

pub use metrics::{Histogram, Metric, MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS};
pub use tracer::{
    current, install, monotonic_us, ArgValue, EventKind, InstalledTracer, SpanGuard, TraceEvent,
    Tracer,
};

/// Exporters for recorded trace events.
pub mod export {
    pub use crate::export_impl::{
        ascii_timeline, chrome_trace, chrome_trace_string, validate_chrome_trace,
    };
}
