//! The span/event recorder.

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// A typed span/event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (byte counts, element counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (milliseconds, ratios).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Text.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// What kind of timeline entry a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A closed interval: Chrome's `"X"` (complete) event.
    Complete {
        /// Duration in microseconds.
        dur_us: f64,
    },
    /// A point in time: Chrome's `"i"` (instant) event.
    Instant,
    /// A sampled value: Chrome's `"C"` (counter) event.
    Counter {
        /// The sampled value.
        value: f64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (span label, instant label, or counter series name).
    pub name: Cow<'static, str>,
    /// Track (rank/thread lane) the event belongs to; becomes Chrome's
    /// `tid`.
    pub track: u32,
    /// Start (or sample) timestamp in microseconds since the tracer was
    /// created.
    pub ts_us: f64,
    /// The kind-specific payload.
    pub kind: EventKind,
    /// Key/value annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

#[derive(Debug)]
struct Shared {
    start: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl Shared {
    fn now_us(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6
    }

    fn push(&self, ev: TraceEvent) {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).push(ev);
    }
}

/// Records spans, instants, and counter samples onto a shared buffer.
///
/// Cheap to clone: clones share the buffer and time base. The `track`
/// carried by each handle attributes events to a lane (rank or thread);
/// derive per-rank handles with [`Tracer::with_track`].
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Option<Arc<Shared>>,
    track: u32,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A recording tracer on track 0. The time base starts now.
    pub fn enabled() -> Self {
        Tracer {
            inner: Some(Arc::new(Shared { start: Instant::now(), events: Mutex::new(Vec::new()) })),
            track: 0,
        }
    }

    /// A no-op tracer: every call is an `Option` check, nothing allocates.
    pub fn disabled() -> Self {
        Tracer { inner: None, track: 0 }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle recording onto the same buffer under a different track
    /// (typically `track = rank`).
    pub fn with_track(&self, track: u32) -> Tracer {
        Tracer { inner: self.inner.clone(), track }
    }

    /// The track this handle attributes events to.
    pub fn track(&self) -> u32 {
        self.track
    }

    /// Microseconds since the tracer's time base (0 when disabled).
    pub fn now_us(&self) -> f64 {
        self.inner.as_ref().map_or(0.0, |s| s.now_us())
    }

    /// Opens a span; it closes (and records) when the guard drops.
    #[must_use = "the span closes when the guard drops"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_args(name, Vec::new)
    }

    /// Opens a span with annotations. `args` is only evaluated when the
    /// tracer is enabled, so argument construction costs nothing on the
    /// disabled path.
    #[must_use = "the span closes when the guard drops"]
    pub fn span_args(
        &self,
        name: &'static str,
        args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
    ) -> SpanGuard {
        SpanGuard {
            rec: self.inner.as_ref().map(|shared| OpenSpan {
                shared: Arc::clone(shared),
                name: Cow::Borrowed(name),
                track: self.track,
                start_us: shared.now_us(),
                args: args(),
            }),
        }
    }

    /// Records a point event.
    pub fn instant(&self, name: &'static str) {
        self.instant_args(name, Vec::new);
    }

    /// Records a point event with annotations. As with
    /// [`Tracer::span_args`], `args` is only evaluated when the tracer is
    /// enabled, so argument construction costs nothing on the disabled path.
    pub fn instant_args(
        &self,
        name: &'static str,
        args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(shared) = &self.inner {
            let ts_us = shared.now_us();
            shared.push(TraceEvent {
                name: Cow::Borrowed(name),
                track: self.track,
                ts_us,
                kind: EventKind::Instant,
                args: args(),
            });
        }
    }

    /// Samples a counter series (e.g. an allocator watermark) at the
    /// current time.
    pub fn counter(&self, name: &'static str, value: f64) {
        if let Some(shared) = &self.inner {
            let ts_us = shared.now_us();
            shared.push(TraceEvent {
                name: Cow::Borrowed(name),
                track: self.track,
                ts_us,
                kind: EventKind::Counter { value },
                args: Vec::new(),
            });
        }
    }

    /// Records a complete interval at explicit timestamps, for synthetic
    /// timelines (e.g. pipeline-schedule simulations whose clock is
    /// simulated milliseconds rather than wall time).
    pub fn complete_at(
        &self,
        name: impl Into<Cow<'static, str>>,
        track: u32,
        start_us: f64,
        dur_us: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(shared) = &self.inner {
            shared.push(TraceEvent {
                name: name.into(),
                track,
                ts_us: start_us,
                kind: EventKind::Complete { dur_us },
                args,
            });
        }
    }

    /// Records a counter sample at an explicit timestamp.
    pub fn counter_at(
        &self,
        name: impl Into<Cow<'static, str>>,
        track: u32,
        ts_us: f64,
        value: f64,
    ) {
        if let Some(shared) = &self.inner {
            shared.push(TraceEvent {
                name: name.into(),
                track,
                ts_us,
                kind: EventKind::Counter { value },
                args: Vec::new(),
            });
        }
    }

    /// Snapshot of everything recorded so far, in completion order.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(s) => s.events.lock().unwrap_or_else(PoisonError::into_inner).clone(),
            None => Vec::new(),
        }
    }
}

struct OpenSpan {
    shared: Arc<Shared>,
    name: Cow<'static, str>,
    track: u32,
    start_us: f64,
    args: Vec<(&'static str, ArgValue)>,
}

/// Closes its span when dropped. Returned by [`Tracer::span`]; owns no
/// lifetime, so it can outlive the `&Tracer` it came from.
///
/// The close event is recorded even when the guard drops during panic
/// unwinding (a rank dying inside `World::run_fallible`), so traces from
/// faulted runs stay balanced; such spans carry a `panicked = true`
/// annotation so post-mortem tooling can tell an aborted interval from a
/// completed one.
pub struct SpanGuard {
    rec: Option<OpenSpan>,
}

impl SpanGuard {
    /// Appends an annotation recorded when the span closes — the complement
    /// of [`Tracer::span_args`], whose closure runs at open. Use it for
    /// values only known at the end of the interval (measured durations,
    /// result sizes). No-op on a disabled tracer's guard.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(open) = self.rec.as_mut() {
            open.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut open) = self.rec.take() {
            let end_us = open.shared.now_us();
            if std::thread::panicking() {
                open.args.push(("panicked", ArgValue::Bool(true)));
            }
            open.shared.push(TraceEvent {
                name: open.name,
                track: open.track,
                ts_us: open.start_us,
                kind: EventKind::Complete { dur_us: end_us - open.start_us },
                args: open.args,
            });
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Tracer> = RefCell::new(Tracer::disabled());
}

/// The tracer installed on this thread, or a disabled tracer. Cloning is a
/// refcount bump (or nothing when disabled), so calling this in hot paths
/// is fine.
pub fn current() -> Tracer {
    CURRENT.with(|c| c.borrow().clone())
}

/// Installs `tracer` as this thread's current tracer for the guard's
/// lifetime; the previous tracer is restored on drop.
#[must_use = "the tracer is uninstalled when the guard drops"]
pub fn install(tracer: Tracer) -> InstalledTracer {
    let prev = CURRENT.with(|c| c.replace(tracer));
    InstalledTracer { prev: Some(prev) }
}

/// Guard restoring the previously installed thread tracer. See [`install`].
pub struct InstalledTracer {
    prev: Option<Tracer>,
}

impl Drop for InstalledTracer {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// Microseconds elapsed since the first call in this process, from a single
/// shared monotonic origin. Durations computed from two readings are
/// comparable across threads, which plain per-call `Instant`s would not be.
/// This is the sanctioned clock for crates whose own use of `Instant` is
/// denied by the `wall-clock` lint.
pub fn monotonic_us() -> u64 {
    use std::sync::OnceLock;
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    ORIGIN.get_or_init(Instant::now).elapsed().as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let _s = t.span("x");
            t.instant("i");
            t.counter("c", 1.0);
            t.complete_at("y", 0, 0.0, 1.0, Vec::new());
        }
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
    }

    #[test]
    fn disabled_span_args_closure_is_not_evaluated() {
        let t = Tracer::disabled();
        let _s = t.span_args("x", || panic!("args must not be built when disabled"));
    }

    #[test]
    fn spans_nest_and_record_on_drop() {
        let t = Tracer::enabled();
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span_args("inner", || vec![("k", ArgValue::U64(7))]);
            }
        }
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        // Inner closes first.
        assert_eq!(evs[0].name, "inner");
        assert_eq!(evs[1].name, "outer");
        let (inner, outer) = (&evs[0], &evs[1]);
        let (EventKind::Complete { dur_us: di }, EventKind::Complete { dur_us: do_ }) =
            (inner.kind, outer.kind)
        else {
            panic!("spans must record complete events");
        };
        // Inner is contained in outer.
        assert!(inner.ts_us >= outer.ts_us);
        assert!(inner.ts_us + di <= outer.ts_us + do_ + 1e-3);
        assert_eq!(inner.args, vec![("k", ArgValue::U64(7))]);
    }

    #[test]
    fn tracks_attribute_events_to_lanes() {
        let t = Tracer::enabled();
        let r1 = t.with_track(1);
        t.instant("a");
        r1.instant("b");
        let evs = t.events();
        assert_eq!(evs[0].track, 0);
        assert_eq!(evs[1].track, 1);
        // Clones share the buffer.
        assert_eq!(r1.events().len(), 2);
    }

    #[test]
    fn install_scopes_the_thread_current_tracer() {
        assert!(!current().is_enabled(), "default thread tracer is disabled");
        let t = Tracer::enabled().with_track(3);
        {
            let _g = install(t.clone());
            assert!(current().is_enabled());
            assert_eq!(current().track(), 3);
            current().instant("from-current");
        }
        assert!(!current().is_enabled(), "previous tracer restored");
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn threads_have_independent_current_tracers() {
        let t = Tracer::enabled();
        let _g = install(t);
        let other = std::thread::spawn(|| current().is_enabled()).join().unwrap();
        assert!(!other, "install is thread-local");
    }

    #[test]
    fn close_time_args_append_after_open_args() {
        let t = Tracer::enabled();
        {
            let mut s = t.span_args("g", || vec![("open", ArgValue::U64(1))]);
            s.arg("close", 2u64);
        }
        let evs = t.events();
        assert_eq!(evs[0].args, vec![("open", ArgValue::U64(1)), ("close", ArgValue::U64(2))]);
        // Disabled guards accept (and drop) close-time args.
        let mut d = Tracer::disabled().span("g");
        d.arg("close", 2u64);
    }

    #[test]
    fn span_closes_and_is_marked_during_panic_unwinding() {
        let t = Tracer::enabled();
        let t2 = t.clone();
        let joined = std::thread::spawn(move || {
            let _s = t2.span("doomed");
            panic!("boom");
        })
        .join();
        assert!(joined.is_err(), "the thread must actually panic");
        let evs = t.events();
        assert_eq!(evs.len(), 1, "the unwound span still records its close");
        assert_eq!(evs[0].name, "doomed");
        assert!(matches!(evs[0].kind, EventKind::Complete { .. }));
        assert_eq!(evs[0].args, vec![("panicked", ArgValue::Bool(true))]);
    }

    #[test]
    fn explicit_timestamp_events_keep_their_clock() {
        let t = Tracer::enabled();
        t.complete_at("sim", 5, 1000.0, 250.0, vec![("micro", ArgValue::U64(2))]);
        t.counter_at("inflight", 5, 1250.0, 3.0);
        let evs = t.events();
        assert_eq!(evs[0].ts_us, 1000.0);
        assert_eq!(evs[0].kind, EventKind::Complete { dur_us: 250.0 });
        assert_eq!(evs[0].track, 5);
        assert_eq!(evs[1].kind, EventKind::Counter { value: 3.0 });
    }
}
