//! Event exporters: Chrome `trace_event` JSON, ASCII timelines.

use crate::tracer::{ArgValue, EventKind, TraceEvent};
use serde_json::Value;

fn arg_json(v: &ArgValue) -> Value {
    match v {
        ArgValue::U64(x) => serde_json::to_value(x),
        ArgValue::I64(x) => serde_json::to_value(x),
        ArgValue::F64(x) => serde_json::to_value(x),
        ArgValue::Bool(x) => serde_json::to_value(x),
        ArgValue::Str(x) => serde_json::to_value(x),
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Converts events to a Chrome `trace_event` JSON array (the format
/// `chrome://tracing` and Perfetto load): spans become `"X"` complete
/// events with `ts`/`dur` in microseconds, instants `"i"`, counters `"C"`;
/// the event's track becomes `tid` and everything shares `pid` 0.
pub fn chrome_trace(events: &[TraceEvent]) -> Value {
    let entries = events
        .iter()
        .map(|ev| {
            let mut fields = vec![
                ("name", serde_json::to_value(ev.name.as_ref())),
                ("cat", serde_json::to_value(category(ev))),
                ("pid", serde_json::to_value(&0u64)),
                ("tid", serde_json::to_value(&u64::from(ev.track))),
                ("ts", serde_json::to_value(&ev.ts_us)),
            ];
            match ev.kind {
                EventKind::Complete { dur_us } => {
                    fields.push(("ph", serde_json::to_value("X")));
                    fields.push(("dur", serde_json::to_value(&dur_us)));
                }
                EventKind::Instant => {
                    fields.push(("ph", serde_json::to_value("i")));
                    fields.push(("s", serde_json::to_value("t")));
                }
                EventKind::Counter { .. } => {
                    fields.push(("ph", serde_json::to_value("C")));
                }
            }
            let args: Vec<(String, Value)> = match ev.kind {
                // Chrome renders counter series from the args object.
                EventKind::Counter { value } => {
                    vec![("value".to_string(), serde_json::to_value(&value))]
                }
                _ => ev.args.iter().map(|(k, v)| (k.to_string(), arg_json(v))).collect(),
            };
            if !args.is_empty() {
                fields.push(("args", Value::Object(args)));
            }
            obj(fields)
        })
        .collect();
    Value::Array(entries)
}

fn category(ev: &TraceEvent) -> &'static str {
    match ev.kind {
        EventKind::Complete { .. } => "span",
        EventKind::Instant => "instant",
        EventKind::Counter { .. } => "counter",
    }
}

/// [`chrome_trace`] rendered to a JSON string.
pub fn chrome_trace_string(events: &[TraceEvent]) -> String {
    serde_json::to_string_pretty(&chrome_trace(events)).expect("trace serializes")
}

/// Checks that `v` is a structurally valid Chrome `trace_event` array:
/// every entry has `name`/`ph`/`pid`/`tid`/`ts`, `"X"` events carry a
/// non-negative `dur`, and per-`tid` complete events are properly nested
/// (each pair is disjoint or contained — what a span stack produces).
///
/// # Errors
///
/// A description of the first violation found.
pub fn validate_chrome_trace(v: &Value) -> Result<(), String> {
    let Some(entries) = v.as_array() else {
        return Err("trace must be a JSON array".to_string());
    };
    // (tid, start, end) of X events, for the nesting check.
    let mut intervals: Vec<(u64, f64, f64)> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        for key in ["name", "ph", "pid", "tid", "ts"] {
            if e.get(key).is_none() {
                return Err(format!("entry {i} missing {key:?}"));
            }
        }
        let ph = e["ph"].as_str().ok_or_else(|| format!("entry {i}: ph must be a string"))?;
        match ph {
            "X" => {
                let dur = e["dur"]
                    .as_f64()
                    .ok_or_else(|| format!("entry {i}: X event needs numeric dur"))?;
                if dur < 0.0 {
                    return Err(format!("entry {i}: negative dur {dur}"));
                }
                let ts = e["ts"].as_f64().ok_or_else(|| format!("entry {i}: numeric ts"))?;
                let tid = e["tid"].as_u64().ok_or_else(|| format!("entry {i}: integer tid"))?;
                intervals.push((tid, ts, ts + dur));
            }
            "C" => {
                if e.get("args").and_then(|a| a.get("value")).is_none() {
                    return Err(format!("entry {i}: C event needs args.value"));
                }
            }
            "i" | "B" | "E" | "M" => {}
            other => return Err(format!("entry {i}: unexpected phase {other:?}")),
        }
    }
    // Nesting: within a tid, sort by (start asc, end desc); a stack of open
    // intervals must contain each newcomer or have closed before it.
    intervals.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(a.1.partial_cmp(&b.1).expect("finite ts"))
            .then(b.2.partial_cmp(&a.2).expect("finite ts"))
    });
    // Timestamps are f64 sums, so adjacency can miss by a few ulps; tolerate
    // a magnitude-scaled epsilon when deciding "closed before" / "contained".
    let eps = |t: f64| 1e-9 * t.abs().max(1.0);
    let mut stack: Vec<(u64, f64, f64)> = Vec::new();
    for (tid, start, end) in intervals {
        while let Some(&(top_tid, _, top_end)) = stack.last() {
            if top_tid != tid || top_end <= start + eps(start) {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(_, _, top_end)) = stack.last() {
            if end > top_end + eps(top_end) {
                return Err(format!(
                    "tid {tid}: span [{start}, {end}] partially overlaps enclosing span ending {top_end}"
                ));
            }
        }
        stack.push((tid, start, end));
    }
    Ok(())
}

/// Renders per-track ASCII timelines of the complete (span) events, one
/// labelled lane per track, `width` columns spanning the full recorded
/// interval. Each span paints its first letter; when spans nest, the
/// shorter (deeper) span wins the cell. A legend maps letters to names.
pub fn ascii_timeline(events: &[TraceEvent], width: usize) -> String {
    let width = width.max(10);
    let spans: Vec<(&TraceEvent, f64)> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Complete { dur_us } => Some((e, dur_us)),
            _ => None,
        })
        .collect();
    if spans.is_empty() {
        return "(no spans recorded)\n".to_string();
    }
    let t0 = spans.iter().map(|(e, _)| e.ts_us).fold(f64::INFINITY, f64::min);
    let t1 = spans.iter().map(|(e, d)| e.ts_us + d).fold(f64::NEG_INFINITY, f64::max);
    let range = (t1 - t0).max(1e-9);
    let mut tracks: Vec<u32> = spans.iter().map(|(e, _)| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();

    // Longer spans paint first so nested (shorter) spans overwrite them.
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| spans[b].1.partial_cmp(&spans[a].1).expect("finite durations"));

    let mut legend: Vec<(char, String)> = Vec::new();
    let mut letter_for = |name: &str| -> char {
        if let Some((c, _)) = legend.iter().find(|(_, n)| n == name) {
            return *c;
        }
        let c = char::from(b'A' + (legend.len() % 26) as u8);
        legend.push((c, name.to_string()));
        c
    };

    let mut lanes: Vec<Vec<char>> = vec![vec!['.'; width]; tracks.len()];
    for i in order {
        let (e, dur) = spans[i];
        let lane = tracks.binary_search(&e.track).expect("track present");
        let c = letter_for(e.name.as_ref());
        let lo = (((e.ts_us - t0) / range) * width as f64).floor() as usize;
        let hi = ((((e.ts_us + dur) - t0) / range) * width as f64).ceil() as usize;
        for cell in lanes[lane].iter_mut().take(hi.min(width)).skip(lo.min(width - 1)) {
            *cell = c;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("timeline: {:.1} us .. {:.1} us ({} spans)\n", t0, t1, spans.len()));
    for (lane, track) in tracks.iter().enumerate() {
        out.push_str(&format!("track {track:>3} |"));
        out.extend(lanes[lane].iter());
        out.push_str("|\n");
    }
    out.push_str("legend: ");
    for (i, (c, name)) in legend.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{c}={name}"));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    fn sample_events() -> Vec<TraceEvent> {
        let t = Tracer::enabled();
        t.complete_at("outer", 0, 0.0, 100.0, vec![("bytes", ArgValue::U64(64))]);
        t.complete_at("inner", 0, 10.0, 20.0, Vec::new());
        t.complete_at("other", 1, 5.0, 50.0, Vec::new());
        t.counter_at("watermark", 0, 50.0, 42.0);
        t.instant("tick");
        t.events()
    }

    #[test]
    fn chrome_trace_has_the_documented_shape() {
        let v = chrome_trace(&sample_events());
        let arr = v.as_array().expect("array");
        assert_eq!(arr.len(), 5);
        assert_eq!(arr[0]["ph"], "X");
        assert_eq!(arr[0]["name"], "outer");
        assert_eq!(arr[0]["dur"], 100.0);
        assert_eq!(arr[0]["args"]["bytes"], 64u64);
        assert_eq!(arr[2]["tid"], 1u64);
        assert_eq!(arr[3]["ph"], "C");
        assert_eq!(arr[3]["args"]["value"], 42.0);
        assert_eq!(arr[4]["ph"], "i");
        validate_chrome_trace(&v).expect("valid");
    }

    #[test]
    fn validation_rejects_partial_overlap() {
        let t = Tracer::enabled();
        t.complete_at("a", 0, 0.0, 50.0, Vec::new());
        t.complete_at("b", 0, 25.0, 50.0, Vec::new());
        let err = validate_chrome_trace(&chrome_trace(&t.events())).unwrap_err();
        assert!(err.contains("overlaps"), "{err}");
    }

    #[test]
    fn validation_accepts_cross_track_overlap() {
        let t = Tracer::enabled();
        t.complete_at("a", 0, 0.0, 50.0, Vec::new());
        t.complete_at("b", 1, 25.0, 50.0, Vec::new());
        validate_chrome_trace(&chrome_trace(&t.events())).expect("different tids may overlap");
    }

    #[test]
    fn ascii_timeline_draws_each_track() {
        let s = ascii_timeline(&sample_events(), 40);
        assert!(s.contains("track   0 |"), "{s}");
        assert!(s.contains("track   1 |"), "{s}");
        assert!(s.contains("A=outer") || s.contains("=outer"), "{s}");
        // The nested span overwrites part of the outer lane.
        let lane0 = s.lines().find(|l| l.starts_with("track   0")).unwrap();
        assert!(lane0.chars().filter(|c| c.is_ascii_uppercase()).count() >= 2, "{s}");
    }

    #[test]
    fn empty_timeline_is_graceful() {
        assert!(ascii_timeline(&[], 40).contains("no spans"));
    }
}
