//! A versioned binary codec for the vendored serde [`Value`] tree.
//!
//! Checkpoints must round-trip `f32` weights bit-exactly, which JSON text
//! cannot guarantee without care; this format writes every float as its raw
//! IEEE-754 `f64` bits (the `f32 → f64` widening is exact, so the
//! `f32 → f64 → bits → f64 → f32` round trip preserves every bit pattern,
//! including `-0.0` and subnormals). The layout is a 4-byte magic
//! (`MTCK`), a little-endian `u32` format version, and one tagged,
//! length-prefixed tree node per value.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// File magic for checkpoint blobs.
pub const MAGIC: [u8; 4] = *b"MTCK";
/// Current format version.
pub const VERSION: u32 = 1;

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_UINT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_ARRAY: u8 = 6;
const TAG_OBJECT: u8 = 7;

/// Errors from [`decode_value`] / [`from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The blob does not start with the `MTCK` magic.
    BadMagic,
    /// The blob's version is newer than this decoder understands.
    UnsupportedVersion(u32),
    /// The blob ended mid-node.
    Truncated,
    /// An unknown node tag was encountered.
    BadTag(u8),
    /// A string node held invalid UTF-8.
    BadUtf8,
    /// Bytes remained after the root value.
    TrailingBytes,
    /// The decoded tree did not match the target type.
    Shape(String),
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::BadMagic => write!(f, "not an MTCK checkpoint (bad magic)"),
            BinError::UnsupportedVersion(v) => {
                write!(f, "checkpoint format version {v} is newer than supported {VERSION}")
            }
            BinError::Truncated => write!(f, "checkpoint truncated"),
            BinError::BadTag(t) => write!(f, "unknown checkpoint node tag {t}"),
            BinError::BadUtf8 => write!(f, "checkpoint string is not valid UTF-8"),
            BinError::TrailingBytes => write!(f, "trailing bytes after checkpoint root"),
            BinError::Shape(msg) => write!(f, "checkpoint shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for BinError {}

/// Serializes `t` to a headered binary blob.
pub fn to_bytes<T: Serialize>(t: &T) -> Vec<u8> {
    encode_value(&t.to_value())
}

/// Deserializes a value of type `T` from a blob produced by [`to_bytes`].
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, BinError> {
    let v = decode_value(bytes)?;
    T::from_value(&v).map_err(|e| BinError::Shape(e.to_string()))
}

/// Encodes a [`Value`] tree with the `MTCK` header.
pub fn encode_value(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    write_node(&mut out, v);
    out
}

/// Decodes a blob produced by [`encode_value`], checking magic and version.
pub fn decode_value(bytes: &[u8]) -> Result<Value, BinError> {
    if bytes.len() < 8 || bytes[..4] != MAGIC {
        return Err(BinError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version > VERSION {
        return Err(BinError::UnsupportedVersion(version));
    }
    let mut cursor = 8usize;
    let v = read_node(bytes, &mut cursor)?;
    if cursor != bytes.len() {
        return Err(BinError::TrailingBytes);
    }
    Ok(v)
}

fn write_node(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::UInt(u) => {
            out.push(TAG_UINT);
            out.extend_from_slice(&u.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            out.extend_from_slice(&(items.len() as u64).to_le_bytes());
            for item in items {
                write_node(out, item);
            }
        }
        Value::Object(pairs) => {
            out.push(TAG_OBJECT);
            out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
            for (k, val) in pairs {
                out.extend_from_slice(&(k.len() as u64).to_le_bytes());
                out.extend_from_slice(k.as_bytes());
                write_node(out, val);
            }
        }
    }
}

fn take<'a>(bytes: &'a [u8], cursor: &mut usize, n: usize) -> Result<&'a [u8], BinError> {
    let end = cursor.checked_add(n).ok_or(BinError::Truncated)?;
    if end > bytes.len() {
        return Err(BinError::Truncated);
    }
    let slice = &bytes[*cursor..end];
    *cursor = end;
    Ok(slice)
}

fn read_u64(bytes: &[u8], cursor: &mut usize) -> Result<u64, BinError> {
    Ok(u64::from_le_bytes(take(bytes, cursor, 8)?.try_into().expect("8 bytes")))
}

fn read_len(bytes: &[u8], cursor: &mut usize) -> Result<usize, BinError> {
    usize::try_from(read_u64(bytes, cursor)?).map_err(|_| BinError::Truncated)
}

fn read_str(bytes: &[u8], cursor: &mut usize) -> Result<String, BinError> {
    let len = read_len(bytes, cursor)?;
    std::str::from_utf8(take(bytes, cursor, len)?)
        .map(str::to_string)
        .map_err(|_| BinError::BadUtf8)
}

fn read_node(bytes: &[u8], cursor: &mut usize) -> Result<Value, BinError> {
    let tag = take(bytes, cursor, 1)?[0];
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL => Ok(Value::Bool(take(bytes, cursor, 1)?[0] != 0)),
        TAG_INT => {
            Ok(Value::Int(i64::from_le_bytes(take(bytes, cursor, 8)?.try_into().expect("8"))))
        }
        TAG_UINT => Ok(Value::UInt(read_u64(bytes, cursor)?)),
        TAG_FLOAT => Ok(Value::Float(f64::from_bits(read_u64(bytes, cursor)?))),
        TAG_STR => Ok(Value::Str(read_str(bytes, cursor)?)),
        TAG_ARRAY => {
            let len = read_len(bytes, cursor)?;
            let mut items = Vec::with_capacity(len.min(bytes.len()));
            for _ in 0..len {
                items.push(read_node(bytes, cursor)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let len = read_len(bytes, cursor)?;
            let mut pairs = Vec::with_capacity(len.min(bytes.len()));
            for _ in 0..len {
                let k = read_str(bytes, cursor)?;
                let v = read_node(bytes, cursor)?;
                pairs.push((k, v));
            }
            Ok(Value::Object(pairs))
        }
        other => Err(BinError::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        decode_value(&encode_value(v)).expect("decodes")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MIN),
            Value::UInt(u64::MAX),
            Value::Str("héllo \"world\"\n".to_string()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        // Values JSON text rendering would mangle or lose precision on:
        // negative zero, subnormals, and non-round decimals.
        for f in [0.0f32, -0.0, 1e-45, f32::MIN_POSITIVE, 0.1, -3.4e38, f32::NAN, f32::INFINITY] {
            let v = Value::Float(f64::from(f));
            let back = roundtrip(&v);
            let Value::Float(g) = back else { panic!("float expected") };
            assert_eq!((g as f32).to_bits(), f.to_bits(), "bits differ for {f}");
        }
        // A raw f64 bit pattern survives too.
        let v = Value::Float(f64::from_bits(0x7ff0_dead_beef_0001));
        let Value::Float(g) = roundtrip(&v) else { panic!() };
        assert_eq!(g.to_bits(), 0x7ff0_dead_beef_0001);
    }

    #[test]
    fn nested_trees_round_trip() {
        let v = Value::Object(vec![
            ("weights".to_string(), Value::Array(vec![Value::Float(1.5), Value::Float(-0.0)])),
            ("step".to_string(), Value::UInt(17)),
            (
                "nested".to_string(),
                Value::Object(vec![("empty".to_string(), Value::Array(vec![]))]),
            ),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn typed_round_trip_through_serde() {
        let xs: Vec<f32> = vec![0.1, -0.0, 1e-45, 7.25];
        let bytes = to_bytes(&xs);
        let back: Vec<f32> = from_bytes(&bytes).expect("decodes");
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert_eq!(decode_value(b"oops"), Err(BinError::BadMagic));
        let mut newer = encode_value(&Value::Null);
        newer[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(decode_value(&newer), Err(BinError::UnsupportedVersion(99)));
        let mut truncated = encode_value(&Value::Int(5));
        truncated.truncate(truncated.len() - 2);
        assert_eq!(decode_value(&truncated), Err(BinError::Truncated));
        let mut trailing = encode_value(&Value::Null);
        trailing.push(0);
        assert_eq!(decode_value(&trailing), Err(BinError::TrailingBytes));
        let mut badtag = encode_value(&Value::Null);
        let last = badtag.len() - 1;
        badtag[last] = 200;
        assert_eq!(decode_value(&badtag), Err(BinError::BadTag(200)));
    }
}
