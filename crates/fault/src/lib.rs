//! mt-fault: deterministic fault injection and the checkpoint wire format.
//!
//! Long training runs at the scale of Korthikanti et al. (weeks on Selene)
//! treat rank failure and stragglers as routine, so the simulated stack
//! needs a way to *provoke* those conditions on demand and to recover from
//! them exactly. This crate provides the two halves that are independent of
//! the communication runtime:
//!
//! - [`FaultPlan`]: a deterministic schedule of injected faults — rank
//!   panics, collective delays (straggler simulation), and transient
//!   failures — keyed by `(rank, collective-sequence)` or `(rank, step)`
//!   coordinates. Plans are seeded through the existing `SplitMix64`
//!   generator, never wall-clock, so a chaos run is exactly reproducible.
//! - [`binfmt`]: a small versioned binary codec over the vendored serde
//!   [`Value`](serde::Value) tree. Floats travel as raw IEEE-754 bits, so
//!   checkpoints round-trip `f32` weights and Adam moments bit-exactly —
//!   the property the deterministic resume contract is built on.
//!
//! The collectives runtime (`mt-collectives`) consumes plans at collective
//! granularity; the trainer (`mt-model`) consumes them at step granularity
//! and uses `binfmt` for `Trainer::save_checkpoint`/`resume_from`.

pub mod binfmt;
mod plan;

pub use plan::{FaultAction, FaultKind, FaultPlan, FaultPlanBuilder, FaultSite, FaultSpec};
