//! Deterministic fault schedules.

use mt_sync::Mutex;
use mt_tensor::rng::SplitMix64;

/// What an injected fault does at its coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The rank thread panics, simulating a hard rank death.
    Panic,
    /// The rank stalls for the given duration before proceeding, simulating
    /// a straggler. Durations are typically derived from the α–β
    /// communication cost model (`CommCostModel` in mt-collectives) so the
    /// stall is a calibrated multiple of a modeled collective.
    Delay {
        /// Stall length in microseconds.
        micros: u64,
    },
    /// The operation fails once with a retryable error; the retry at the
    /// same coordinate succeeds and is reported as recovered.
    Transient,
}

/// Where an injected fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The `seq`-th collective issued by `rank` (counted per world attempt,
    /// starting at 0).
    Collective {
        /// Rank whose collective call is targeted.
        rank: usize,
        /// Zero-based index of the collective call on that rank.
        seq: u64,
    },
    /// The start of training step `step` on `rank`.
    Step {
        /// Rank whose step is targeted.
        rank: usize,
        /// Global training-step number.
        step: u64,
    },
}

/// One scheduled fault: a site plus what happens there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Coordinate at which the fault fires.
    pub site: FaultSite,
    /// Effect of the fault.
    pub kind: FaultKind,
}

/// What the instrumented call site should do right now, as returned by
/// [`FaultPlan::poll_collective`] / [`FaultPlan::poll_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic the calling rank thread.
    Panic,
    /// Sleep for `micros` microseconds, then proceed normally.
    Delay {
        /// Stall length in microseconds.
        micros: u64,
    },
    /// Fail this call with a transient error; a retry will succeed.
    Fail,
    /// This coordinate previously failed (transient or panic) and is now
    /// being replayed successfully — emit a `fault_recovered` instant.
    Recovered,
}

#[derive(Debug, Default)]
struct PlanState {
    /// Per-spec: the fault already fired (consume-once semantics).
    fired: Vec<bool>,
    /// Per-spec: the recovery of a fired Panic/Transient was already
    /// reported, so later visits to the coordinate are silent.
    recovery_reported: Vec<bool>,
}

/// A deterministic schedule of injected faults, installed per `World`.
///
/// Every fault is pinned to an explicit coordinate — no wall-clock, no
/// global randomness — so a chaos run replays identically under
/// `--test-threads=1` or 16, debug or release. Randomized plans go through
/// [`FaultPlan::random`], which draws coordinates from a seeded
/// [`SplitMix64`] stream.
///
/// `Panic` and `Transient` faults are **consume-once**: after firing, the
/// coordinate behaves normally, which is what makes retry-from-checkpoint
/// converge. The first successful replay of a consumed coordinate reports
/// [`FaultAction::Recovered`] exactly once so the tracer can mark the
/// recovery.
#[derive(Debug)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// A plan with no faults (useful as a fault-free control).
    pub fn none() -> Self {
        FaultPlanBuilder::new().build()
    }

    /// Starts building a plan by listing explicit faults.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder::new()
    }

    /// A randomized plan drawn deterministically from `seed`: `count`
    /// faults at distinct collective coordinates over `ranks` ranks and
    /// sequence numbers `0..max_seq`, with kinds cycled through
    /// panic/delay/transient. Same seed, same plan — always.
    pub fn random(seed: u64, ranks: usize, max_seq: u64, count: usize) -> Self {
        assert!(ranks > 0 && max_seq > 0, "random plan needs a non-empty coordinate space");
        let mut rng = SplitMix64::new(seed);
        let mut b = FaultPlanBuilder::new();
        let mut used: Vec<(usize, u64)> = Vec::with_capacity(count);
        while used.len() < count {
            let rank = (rng.next_u64() % ranks as u64) as usize;
            let seq = rng.next_u64() % max_seq;
            if used.contains(&(rank, seq)) {
                continue;
            }
            used.push((rank, seq));
            b = match rng.next_u64() % 3 {
                0 => b.panic_at_collective(rank, seq),
                1 => b.delay_collective(rank, seq, 100 + rng.next_u64() % 900),
                _ => b.transient_at_collective(rank, seq),
            };
        }
        b.build()
    }

    /// The scheduled faults, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// True if the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// How many faults have fired so far.
    pub fn fired_count(&self) -> usize {
        self.state.lock().fired.iter().filter(|f| **f).count()
    }

    /// Consults the plan before rank `rank`'s `seq`-th collective call.
    pub fn poll_collective(&self, rank: usize, seq: u64) -> Option<FaultAction> {
        self.poll(FaultSite::Collective { rank, seq })
    }

    /// Consults the plan at the top of training step `step` on `rank`.
    pub fn poll_step(&self, rank: usize, step: u64) -> Option<FaultAction> {
        self.poll(FaultSite::Step { rank, step })
    }

    fn poll(&self, site: FaultSite) -> Option<FaultAction> {
        let idx = self.specs.iter().position(|s| s.site == site)?;
        let kind = self.specs[idx].kind;
        let mut st = self.state.lock();
        if !st.fired[idx] {
            st.fired[idx] = true;
            return Some(match kind {
                FaultKind::Panic => FaultAction::Panic,
                FaultKind::Delay { micros } => FaultAction::Delay { micros },
                FaultKind::Transient => FaultAction::Fail,
            });
        }
        // Already fired: panics and transients get one Recovered report on
        // the first replay of the coordinate; delays do not recur.
        if matches!(kind, FaultKind::Panic | FaultKind::Transient) && !st.recovery_reported[idx] {
            st.recovery_reported[idx] = true;
            return Some(FaultAction::Recovered);
        }
        None
    }
}

/// Builder for [`FaultPlan`]. Coordinates may be listed in any order.
#[derive(Debug, Default)]
pub struct FaultPlanBuilder {
    specs: Vec<FaultSpec>,
}

impl FaultPlanBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        FaultPlanBuilder { specs: Vec::new() }
    }

    /// Adds an arbitrary spec.
    pub fn spec(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Panics rank `rank` at its `seq`-th collective call.
    pub fn panic_at_collective(self, rank: usize, seq: u64) -> Self {
        self.spec(FaultSpec { site: FaultSite::Collective { rank, seq }, kind: FaultKind::Panic })
    }

    /// Panics rank `rank` at the start of step `step`.
    pub fn panic_at_step(self, rank: usize, step: u64) -> Self {
        self.spec(FaultSpec { site: FaultSite::Step { rank, step }, kind: FaultKind::Panic })
    }

    /// Stalls rank `rank`'s `seq`-th collective by `micros` microseconds.
    pub fn delay_collective(self, rank: usize, seq: u64, micros: u64) -> Self {
        self.spec(FaultSpec {
            site: FaultSite::Collective { rank, seq },
            kind: FaultKind::Delay { micros },
        })
    }

    /// Fails rank `rank`'s `seq`-th collective once with a transient error.
    pub fn transient_at_collective(self, rank: usize, seq: u64) -> Self {
        self.spec(FaultSpec {
            site: FaultSite::Collective { rank, seq },
            kind: FaultKind::Transient,
        })
    }

    /// Fails rank `rank`'s step `step` once with a transient error.
    pub fn transient_at_step(self, rank: usize, step: u64) -> Self {
        self.spec(FaultSpec { site: FaultSite::Step { rank, step }, kind: FaultKind::Transient })
    }

    /// Finalizes the plan.
    ///
    /// # Panics
    ///
    /// Panics if two specs share a coordinate (the plan would be ambiguous).
    pub fn build(self) -> FaultPlan {
        for (i, a) in self.specs.iter().enumerate() {
            for b in &self.specs[i + 1..] {
                assert!(a.site != b.site, "duplicate fault site {:?}", a.site);
            }
        }
        let n = self.specs.len();
        FaultPlan {
            specs: self.specs,
            state: Mutex::new(PlanState {
                fired: vec![false; n],
                recovery_reported: vec![false; n],
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_fires_once_then_reports_recovery_once() {
        let plan = FaultPlan::builder().panic_at_step(1, 5).build();
        assert_eq!(plan.poll_step(1, 4), None);
        assert_eq!(plan.poll_step(0, 5), None);
        assert_eq!(plan.poll_step(1, 5), Some(FaultAction::Panic));
        // Replay of the coordinate after the fault: recovered, then silent.
        assert_eq!(plan.poll_step(1, 5), Some(FaultAction::Recovered));
        assert_eq!(plan.poll_step(1, 5), None);
        assert_eq!(plan.fired_count(), 1);
    }

    #[test]
    fn transient_fails_once_then_recovers() {
        let plan = FaultPlan::builder().transient_at_collective(0, 3).build();
        assert_eq!(plan.poll_collective(0, 3), Some(FaultAction::Fail));
        assert_eq!(plan.poll_collective(0, 3), Some(FaultAction::Recovered));
        assert_eq!(plan.poll_collective(0, 3), None);
    }

    #[test]
    fn delay_fires_once_without_recovery_report() {
        let plan = FaultPlan::builder().delay_collective(2, 0, 250).build();
        assert_eq!(plan.poll_collective(2, 0), Some(FaultAction::Delay { micros: 250 }));
        assert_eq!(plan.poll_collective(2, 0), None);
    }

    #[test]
    fn random_plans_are_deterministic_in_the_seed() {
        let a = FaultPlan::random(42, 4, 100, 6);
        let b = FaultPlan::random(42, 4, 100, 6);
        let c = FaultPlan::random(43, 4, 100, 6);
        assert_eq!(a.specs(), b.specs());
        assert_ne!(a.specs(), c.specs());
        assert_eq!(a.specs().len(), 6);
        // All coordinates distinct.
        for (i, s) in a.specs().iter().enumerate() {
            for t in &a.specs()[i + 1..] {
                assert_ne!(s.site, t.site);
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate fault site")]
    fn duplicate_sites_are_rejected() {
        let _ = FaultPlan::builder().panic_at_collective(0, 1).delay_collective(0, 1, 10).build();
    }
}
