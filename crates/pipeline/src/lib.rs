//! # mt-pipeline
//!
//! A discrete-event simulator of pipeline-parallel training schedules for
//! the reproduction of *"Reducing Activation Recomputation in Large
//! Transformer Models"*.
//!
//! * **1F1B (PipeDream-flush)** — simulated exactly: per-stage op order
//!   (warmup forwards, steady 1F1B pairs, cooldown backwards), cross-stage
//!   dependencies with point-to-point transfer lag, per-stage busy/bubble
//!   accounting, and the peak number of in-flight microbatches per stage —
//!   which the simulation itself shows to be `min(p − stage, n)`, the
//!   assumption behind the paper's Equation 5 and Figure 9.
//! * **Interleaved schedule** — priced with Megatron's analytic bubble
//!   `(p−1)/m` microbatch slots (Narayanan et al.), as used by the paper's
//!   175B/530B runs.
//! * **Microbatch-level activation recomputation (Appendix C)** — a
//!   per-stage storage budget of `k` microbatches: the first `k` in flight
//!   skip recomputation entirely; the rest checkpoint and pay the
//!   recompute time in their backward step. Budget 0 is the classic
//!   always-recompute execution; budget ≥ p disables recomputation.
//!
//! ## Example
//!
//! ```
//! use mt_pipeline::{PipelineSim, StageCosts};
//!
//! let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.0), 4, 8, 0.0);
//! let result = sim.simulate_1f1b(None);
//! // 1F1B with uniform stages: (n + p - 1) · (f + b).
//! assert!((result.makespan_ms - (8.0 + 3.0) * 3.0).abs() < 1e-9);
//! assert_eq!(result.peak_in_flight, vec![4, 3, 2, 1]);
//! ```

#![warn(missing_docs)]

mod ascii;
mod interleaved;
mod memory_replay;

pub use ascii::{render_schedule, render_timeline};
pub use interleaved::InterleavedSim;
pub use memory_replay::{live_bytes_series, replay_stage_memory, ReplayConfig, ReplayReport};

use serde::{Deserialize, Serialize};

/// Per-microbatch compute cost of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCosts {
    /// Forward milliseconds per microbatch.
    pub forward_ms: f64,
    /// Backward milliseconds per microbatch, *excluding* recomputation.
    pub backward_ms: f64,
    /// Recompute milliseconds a checkpointed microbatch adds to its
    /// backward step.
    pub recompute_ms: f64,
}

impl StageCosts {
    /// Creates stage costs.
    pub fn new(forward_ms: f64, backward_ms: f64, recompute_ms: f64) -> Self {
        StageCosts { forward_ms, backward_ms, recompute_ms }
    }
}

/// Result of a schedule simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// End-to-end iteration milliseconds (makespan of all ops).
    pub makespan_ms: f64,
    /// Compute-busy milliseconds per stage.
    pub stage_busy_ms: Vec<f64>,
    /// Peak number of microbatches whose activations were alive
    /// simultaneously, per stage.
    pub peak_in_flight: Vec<u64>,
    /// Microbatches per stage that were stored in full (skipped
    /// recomputation) under an Appendix C budget.
    pub stored_full: Vec<u64>,
}

impl SimResult {
    /// Fraction of total stage-time spent idle (the pipeline bubble).
    pub fn bubble_fraction(&self) -> f64 {
        let p = self.stage_busy_ms.len() as f64;
        let busy: f64 = self.stage_busy_ms.iter().sum();
        1.0 - busy / (p * self.makespan_ms)
    }
}

/// A pipeline of `p` stages processing `n` microbatches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSim {
    /// Per-stage costs (`stages.len()` = pipeline size `p`).
    pub stages: Vec<StageCosts>,
    /// Stage-boundary transfer milliseconds.
    pub p2p_ms: f64,
    /// Microbatches per iteration.
    pub num_micro: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Fwd(usize),
    Bwd(usize),
}

/// One executed schedule op, for timeline visualization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Pipeline stage.
    pub stage: usize,
    /// Microbatch index.
    pub micro: usize,
    /// `true` for a forward step, `false` for backward (+recompute).
    pub forward: bool,
    /// Whether this backward step included recomputation.
    pub recomputed: bool,
    /// Start time, milliseconds.
    pub start_ms: f64,
    /// End time, milliseconds.
    pub end_ms: f64,
}

/// Serializes trace events in the Chrome tracing (`chrome://tracing`,
/// Perfetto) JSON array format — one row per pipeline stage, forward and
/// backward steps as duration events. The result is exactly the kind of
/// visualization the paper's Figure 10 sketches.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut entries = Vec::with_capacity(events.len());
    for e in events {
        let name = if e.forward {
            format!("F{}", e.micro)
        } else if e.recomputed {
            format!("R+B{}", e.micro)
        } else {
            format!("B{}", e.micro)
        };
        let phase = if e.forward {
            "forward"
        } else if e.recomputed {
            "backward+recompute"
        } else {
            "backward"
        };
        entries.push(serde_json::json!({
            "name": name,
            "cat": phase,
            "ph": "X",
            "ts": e.start_ms * 1000.0,           // Chrome traces are in µs
            "dur": (e.end_ms - e.start_ms) * 1000.0,
            "pid": 0,
            "tid": e.stage,
        }));
    }
    serde_json::to_string_pretty(&entries).expect("trace serializes")
}

impl PipelineSim {
    /// Creates a pipeline with identical costs on every stage.
    pub fn uniform(costs: StageCosts, p: usize, num_micro: u64, p2p_ms: f64) -> Self {
        PipelineSim { stages: vec![costs; p], p2p_ms, num_micro }
    }

    /// Number of pipeline stages.
    pub fn p(&self) -> usize {
        self.stages.len()
    }

    /// The 1F1B op order for one stage: `w = min(p−1−stage, n)` warmup
    /// forwards, then (F, B) pairs, then the cooldown backwards.
    fn stage_ops(&self, stage: usize) -> Vec<Op> {
        let n = self.num_micro as usize;
        let w = (self.p() - 1 - stage).min(n);
        let mut ops = Vec::with_capacity(2 * n);
        for m in 0..w {
            ops.push(Op::Fwd(m));
        }
        for j in 0..(n - w) {
            ops.push(Op::Fwd(w + j));
            ops.push(Op::Bwd(j));
        }
        for m in (n - w)..n {
            ops.push(Op::Bwd(m));
        }
        ops
    }

    /// The GPipe op order for one stage: all forwards, then all backwards in
    /// reverse microbatch order. Every stage must therefore hold *all* `n`
    /// microbatches' activations at the flush point — the memory pressure
    /// 1F1B exists to avoid (Section 1).
    fn stage_ops_gpipe(&self) -> Vec<Op> {
        let n = self.num_micro as usize;
        let mut ops: Vec<Op> = (0..n).map(Op::Fwd).collect();
        ops.extend((0..n).rev().map(Op::Bwd));
        ops
    }

    /// Simulates the 1F1B schedule.
    ///
    /// `store_budget`, if provided, gives each stage's Appendix C capacity:
    /// how many in-flight microbatches may keep *all* activations (and so
    /// skip `recompute_ms` in their backward). `None` means every microbatch
    /// pays `recompute_ms` — pass stages with `recompute_ms = 0` for the
    /// no-recompute case.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline is empty, `num_micro == 0`, or
    /// `store_budget.len() != p`.
    pub fn simulate_1f1b(&self, store_budget: Option<&[u64]>) -> SimResult {
        let ops: Vec<Vec<Op>> = (0..self.p()).map(|s| self.stage_ops(s)).collect();
        self.simulate_with_ops(ops, store_budget, None)
    }

    /// Like [`PipelineSim::simulate_1f1b`], additionally returning the
    /// executed timeline (see [`chrome_trace_json`]).
    pub fn trace_1f1b(&self, store_budget: Option<&[u64]>) -> (SimResult, Vec<TraceEvent>) {
        let ops: Vec<Vec<Op>> = (0..self.p()).map(|s| self.stage_ops(s)).collect();
        let mut events = Vec::new();
        let result = self.simulate_with_ops(ops, store_budget, Some(&mut events));
        (result, events)
    }

    /// Simulates the GPipe schedule (all-forward then all-backward with a
    /// flush). Compared with 1F1B at equal costs, the makespan is similar
    /// but every stage's peak in-flight count is `n` instead of
    /// `min(p − stage, n)`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PipelineSim::simulate_1f1b`].
    pub fn simulate_gpipe(&self, store_budget: Option<&[u64]>) -> SimResult {
        let ops: Vec<Vec<Op>> = (0..self.p()).map(|_| self.stage_ops_gpipe()).collect();
        self.simulate_with_ops(ops, store_budget, None)
    }

    /// Event-driven engine shared by the schedules: executes each stage's op
    /// list in order, honouring cross-stage dependencies (`F` needs the
    /// previous stage's `F` + transfer; `B` needs the next stage's `B` +
    /// transfer, or the local `F` on the last stage).
    fn simulate_with_ops(
        &self,
        ops: Vec<Vec<Op>>,
        store_budget: Option<&[u64]>,
        mut trace: Option<&mut Vec<TraceEvent>>,
    ) -> SimResult {
        let p = self.p();
        let n = self.num_micro as usize;
        assert!(p > 0, "pipeline needs at least one stage");
        assert!(n > 0, "need at least one microbatch");
        if let Some(b) = store_budget {
            assert_eq!(b.len(), p, "store_budget must have one entry per stage");
        }
        let mut next_op = vec![0usize; p];
        let mut clock = vec![0.0_f64; p];
        let mut busy = vec![0.0_f64; p];
        let mut f_end = vec![vec![f64::NAN; n]; p];
        let mut b_end = vec![vec![f64::NAN; n]; p];
        // Appendix C state: how many stored-full microbatches are currently
        // in flight per stage, and which microbatches were stored.
        let mut stored_now = vec![0u64; p];
        let mut stored = vec![vec![false; n]; p];
        let mut stored_total = vec![0u64; p];

        let mut remaining: usize = ops.iter().map(|o| o.len()).sum();
        while remaining > 0 {
            let mut progressed = false;
            for s in 0..p {
                while next_op[s] < ops[s].len() {
                    let op = ops[s][next_op[s]];
                    // Dependency ready time, or None if not yet satisfied.
                    let ready = match op {
                        Op::Fwd(m) => {
                            if s == 0 {
                                Some(0.0)
                            } else if f_end[s - 1][m].is_nan() {
                                None
                            } else {
                                Some(f_end[s - 1][m] + self.p2p_ms)
                            }
                        }
                        Op::Bwd(m) => {
                            if s == p - 1 {
                                if f_end[s][m].is_nan() {
                                    None
                                } else {
                                    Some(f_end[s][m])
                                }
                            } else if b_end[s + 1][m].is_nan() {
                                None
                            } else {
                                Some(b_end[s + 1][m] + self.p2p_ms)
                            }
                        }
                    };
                    let Some(ready) = ready else { break };
                    let start = clock[s].max(ready);
                    let mut recomputed = false;
                    let dur = match op {
                        Op::Fwd(m) => {
                            if let Some(budget) = store_budget {
                                if stored_now[s] < budget[s] {
                                    stored_now[s] += 1;
                                    stored[s][m] = true;
                                    stored_total[s] += 1;
                                }
                            }
                            self.stages[s].forward_ms
                        }
                        Op::Bwd(m) => {
                            let skip = store_budget.is_some() && stored[s][m];
                            if skip {
                                stored_now[s] -= 1;
                                self.stages[s].backward_ms
                            } else {
                                recomputed = self.stages[s].recompute_ms > 0.0;
                                self.stages[s].backward_ms + self.stages[s].recompute_ms
                            }
                        }
                    };
                    clock[s] = start + dur;
                    busy[s] += dur;
                    match op {
                        Op::Fwd(m) => f_end[s][m] = clock[s],
                        Op::Bwd(m) => b_end[s][m] = clock[s],
                    }
                    if let Some(events) = trace.as_deref_mut() {
                        let (forward, micro) = match op {
                            Op::Fwd(m) => (true, m),
                            Op::Bwd(m) => (false, m),
                        };
                        events.push(TraceEvent {
                            stage: s,
                            micro,
                            forward,
                            recomputed,
                            start_ms: start,
                            end_ms: clock[s],
                        });
                    }
                    next_op[s] += 1;
                    remaining -= 1;
                    progressed = true;
                }
            }
            assert!(progressed, "1F1B schedule deadlocked (internal error)");
        }

        let makespan = clock.iter().fold(0.0_f64, |a, &b| a.max(b));
        // Peak in-flight microbatches per stage: sweep F-completion (+1) and
        // B-completion (−1) events in time order.
        let peak_in_flight = (0..p)
            .map(|s| {
                let mut events: Vec<(f64, i64)> = (0..n)
                    .map(|m| (f_end[s][m], 1i64))
                    .chain((0..n).map(|m| (b_end[s][m], -1i64)))
                    .collect();
                events.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0).expect("finite times").then(a.1.cmp(&b.1))
                });
                let mut cur = 0i64;
                let mut peak = 0i64;
                for (_, delta) in events {
                    cur += delta;
                    peak = peak.max(cur);
                }
                peak as u64
            })
            .collect();

        SimResult {
            makespan_ms: makespan,
            stage_busy_ms: busy,
            peak_in_flight,
            stored_full: stored_total,
        }
    }

    /// Iteration milliseconds under the interleaved schedule with `m` model
    /// chunks per device (Narayanan et al.): bubble shrinks to
    /// `(p−1)/m` microbatch slots. Uses the mean per-stage cost plus the
    /// pipeline-depth point-to-point lag.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn interleaved_ms(&self, m: u64) -> f64 {
        assert!(m > 0, "interleave chunks must be positive");
        let p = self.p() as f64;
        let n = self.num_micro as f64;
        let mean_f: f64 = self.stages.iter().map(|s| s.forward_ms).sum::<f64>() / p;
        let mean_b: f64 =
            self.stages.iter().map(|s| s.backward_ms + s.recompute_ms).sum::<f64>() / p;
        let slots = n + (p - 1.0) / m as f64;
        slots * (mean_f + mean_b) + 2.0 * (p - 1.0) * self.p2p_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stage_is_sequential() {
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.0), 1, 5, 0.0);
        let r = sim.simulate_1f1b(None);
        assert!((r.makespan_ms - 15.0).abs() < 1e-9);
        assert_eq!(r.peak_in_flight, vec![1]);
        assert!(r.bubble_fraction().abs() < 1e-9);
    }

    #[test]
    fn uniform_1f1b_matches_closed_form() {
        // With uniform stages and no transfer lag, 1F1B's makespan is
        // (n + p − 1)(f + b).
        for (p, n) in [(2usize, 4u64), (4, 8), (8, 8), (4, 1)] {
            let f = 1.0;
            let b = 2.0;
            let sim = PipelineSim::uniform(StageCosts::new(f, b, 0.0), p, n, 0.0);
            let r = sim.simulate_1f1b(None);
            let expect = (n as f64 + p as f64 - 1.0) * (f + b);
            assert!(
                (r.makespan_ms - expect).abs() < 1e-9,
                "p={p} n={n}: {} vs {expect}",
                r.makespan_ms
            );
        }
    }

    #[test]
    fn peak_in_flight_is_p_minus_stage() {
        // The Appendix B memory assumption, produced by the simulator
        // itself: stage i holds min(p − i, n) microbatches at peak.
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.0), 4, 8, 0.1);
        let r = sim.simulate_1f1b(None);
        assert_eq!(r.peak_in_flight, vec![4, 3, 2, 1]);
        // And with fewer microbatches than stages, n caps it.
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.0), 4, 2, 0.1);
        let r = sim.simulate_1f1b(None);
        assert_eq!(r.peak_in_flight, vec![2, 2, 2, 1]);
    }

    #[test]
    fn bubble_fraction_shrinks_with_more_microbatches() {
        let costs = StageCosts::new(1.0, 2.0, 0.0);
        let few = PipelineSim::uniform(costs, 4, 4, 0.0).simulate_1f1b(None);
        let many = PipelineSim::uniform(costs, 4, 32, 0.0).simulate_1f1b(None);
        assert!(many.bubble_fraction() < few.bubble_fraction());
        // (p-1)/(n+p-1) closed form for uniform stages.
        let expect = 3.0 / (32.0 + 3.0);
        assert!((many.bubble_fraction() - expect).abs() < 1e-9);
    }

    #[test]
    fn recompute_lengthens_iteration() {
        let none = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.0), 4, 8, 0.0);
        let full = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 1.0), 4, 8, 0.0);
        assert!(full.simulate_1f1b(None).makespan_ms > none.simulate_1f1b(None).makespan_ms);
    }

    #[test]
    fn interleaving_reduces_bubble() {
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.0), 8, 8, 0.0);
        let plain = sim.simulate_1f1b(None).makespan_ms;
        let inter = sim.interleaved_ms(3);
        assert!(inter < plain, "interleaved {inter} vs plain {plain}");
        // m = 1 interleaved equals the plain closed form for uniform costs.
        assert!((sim.interleaved_ms(1) - plain).abs() < 1e-9);
    }

    #[test]
    fn appendix_c_budget_skips_recomputation() {
        // Store budget ≥ peak in-flight ⇒ no microbatch recomputes and the
        // makespan matches a recompute-free pipeline.
        let with = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.5), 4, 8, 0.0);
        let without = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.0), 4, 8, 0.0);
        let budget = vec![8u64; 4];
        let r = with.simulate_1f1b(Some(&budget));
        assert!((r.makespan_ms - without.simulate_1f1b(None).makespan_ms).abs() < 1e-9);
        assert_eq!(r.stored_full, vec![8, 8, 8, 8]);
    }

    #[test]
    fn appendix_c_partial_budget_interpolates() {
        // Figure 10b: storing some microbatches lands between the classic
        // and no-recompute extremes.
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.8), 4, 12, 0.0);
        let classic = sim.simulate_1f1b(Some(&[0, 0, 0, 0])).makespan_ms;
        let partial = sim.simulate_1f1b(Some(&[1, 1, 1, 1]));
        let free = sim.simulate_1f1b(Some(&[12, 12, 12, 12])).makespan_ms;
        assert!(partial.makespan_ms < classic, "{} < {classic}", partial.makespan_ms);
        assert!(partial.makespan_ms > free, "{} > {free}", partial.makespan_ms);
        // The moving window reuses freed slots: more than 1 microbatch per
        // stage ends up stored over the iteration.
        assert!(partial.stored_full.iter().all(|&s| s > 1));
    }

    #[test]
    fn classic_budget_zero_equals_unbudgeted() {
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.7), 4, 8, 0.2);
        let a = sim.simulate_1f1b(None).makespan_ms;
        let b = sim.simulate_1f1b(Some(&[0; 4])).makespan_ms;
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn gpipe_stores_all_microbatches_on_every_stage() {
        // The contrast motivating 1F1B: GPipe's flush forces peak in-flight
        // of n everywhere, versus 1F1B's min(p − stage, n).
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.0), 4, 8, 0.0);
        let gpipe = sim.simulate_gpipe(None);
        assert_eq!(gpipe.peak_in_flight, vec![8, 8, 8, 8]);
        let f1b = sim.simulate_1f1b(None);
        assert_eq!(f1b.peak_in_flight, vec![4, 3, 2, 1]);
    }

    #[test]
    fn gpipe_makespan_matches_closed_form() {
        // GPipe with uniform stages: (n + p − 1)·f + (n + p − 1)·b.
        let (p, n, f, b) = (4usize, 8u64, 1.0, 2.0);
        let sim = PipelineSim::uniform(StageCosts::new(f, b, 0.0), p, n, 0.0);
        let r = sim.simulate_gpipe(None);
        let expect = (n as f64 + p as f64 - 1.0) * (f + b);
        assert!((r.makespan_ms - expect).abs() < 1e-9, "{} vs {expect}", r.makespan_ms);
    }

    #[test]
    fn gpipe_and_1f1b_have_similar_makespan_at_uniform_costs() {
        // With equal per-microbatch costs and no memory constraint, the two
        // schedules differ in *memory*, not throughput (transfer-lag edge
        // effects aside).
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.3), 6, 12, 0.1);
        let a = sim.simulate_1f1b(None).makespan_ms;
        let b = sim.simulate_gpipe(None).makespan_ms;
        assert!((a - b).abs() / a < 0.05, "1F1B {a} vs GPipe {b}");
        // And exactly equal without transfer lag.
        let dry = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.3), 6, 12, 0.0);
        let a0 = dry.simulate_1f1b(None).makespan_ms;
        let b0 = dry.simulate_gpipe(None).makespan_ms;
        assert!((a0 - b0).abs() < 1e-9, "1F1B {a0} vs GPipe {b0}");
    }

    #[test]
    fn gpipe_storage_budget_applies_too() {
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.5), 4, 8, 0.0);
        let classic = sim.simulate_gpipe(Some(&[0; 4])).makespan_ms;
        let free = sim.simulate_gpipe(Some(&[8; 4])).makespan_ms;
        assert!(free < classic);
    }

    #[test]
    fn p2p_lag_increases_makespan() {
        let costs = StageCosts::new(1.0, 2.0, 0.0);
        let fast = PipelineSim::uniform(costs, 4, 8, 0.0).simulate_1f1b(None);
        let slow = PipelineSim::uniform(costs, 4, 8, 0.5).simulate_1f1b(None);
        assert!(slow.makespan_ms > fast.makespan_ms);
    }

    #[test]
    fn trace_covers_every_op_and_matches_makespan() {
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.5), 4, 6, 0.1);
        let (result, events) = sim.trace_1f1b(Some(&[1, 1, 1, 1]));
        assert_eq!(events.len(), 2 * 4 * 6, "one event per op");
        let max_end = events.iter().fold(0.0_f64, |m, e| m.max(e.end_ms));
        assert!((max_end - result.makespan_ms).abs() < 1e-9);
        // Events on one stage never overlap.
        for s in 0..4 {
            let mut stage_events: Vec<_> = events.iter().filter(|e| e.stage == s).collect();
            stage_events.sort_by(|a, b| a.start_ms.partial_cmp(&b.start_ms).unwrap());
            for w in stage_events.windows(2) {
                assert!(w[1].start_ms >= w[0].end_ms - 1e-9, "overlap on stage {s}");
            }
        }
        // Stored microbatches show as plain backwards, others as recomputed.
        assert!(events.iter().any(|e| !e.forward && e.recomputed));
        assert!(events.iter().any(|e| !e.forward && !e.recomputed));
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.0), 2, 3, 0.0);
        let (_, events) = sim.trace_1f1b(None);
        let json = chrome_trace_json(&events);
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed.as_array().unwrap().len(), events.len());
        assert_eq!(parsed[0]["ph"], "X");
    }

    #[test]
    fn heterogeneous_stages_are_supported() {
        // A slow last stage (the logits head) dominates.
        let mut sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.0), 4, 8, 0.0);
        sim.stages[3] = StageCosts::new(2.0, 4.0, 0.0);
        let r = sim.simulate_1f1b(None);
        // Lower bound: the slow stage's own busy time.
        assert!(r.makespan_ms >= 8.0 * 6.0);
        assert!(r.stage_busy_ms[3] > r.stage_busy_ms[0]);
    }
}
