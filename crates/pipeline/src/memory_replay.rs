//! Replays a simulated schedule's allocation trace through the caching
//! allocator of `mt-memory`, quantifying the **fragmentation overhead** the
//! paper's conclusion earmarks as future work: how much bigger than the peak
//! *live* bytes the arena must be for every allocation to succeed.
//!
//! The interesting case is exactly the paper's own optimization space:
//! Appendix C's microbatch-level recomputation mixes block sizes (stored-full
//! microbatches next to checkpointed ones), and Appendix B's output tensors
//! pin small blocks between large ones — both create holes a uniform
//! schedule would not.

use crate::TraceEvent;
use mt_memory::allocator::{AllocError, AllocId, CachingAllocator};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sizes of the allocations one stage makes per microbatch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Activation bytes allocated at microbatch `m`'s forward and freed at
    /// its backward (indexed by microbatch; non-uniform under Appendix C).
    pub activation_bytes: Vec<u64>,
    /// Stage-output tensor bytes per microbatch.
    pub output_bytes: u64,
    /// Appendix B: free each output right after its forward (`true`) or
    /// keep it pinned until the backward (`false`).
    pub deallocate_outputs: bool,
}

/// Result of a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Peak simultaneously-live bytes (allocator-independent lower bound).
    pub peak_live_bytes: u64,
    /// Smallest arena with which the best-fit allocator completes the trace.
    pub minimal_arena_bytes: u64,
}

impl ReplayReport {
    /// `minimal_arena / peak_live − 1`: the memory lost to fragmentation.
    pub fn fragmentation_overhead(&self) -> f64 {
        self.minimal_arena_bytes as f64 / self.peak_live_bytes.max(1) as f64 - 1.0
    }
}

/// Chronological alloc/free actions for one stage, derived from its trace.
fn stage_actions(stage_events: &[TraceEvent], cfg: &ReplayConfig) -> Vec<(bool, usize, u64)> {
    let mut events: Vec<&TraceEvent> = stage_events.iter().collect();
    events.sort_by(|a, b| a.start_ms.partial_cmp(&b.start_ms).expect("finite times"));
    let mut actions = Vec::new(); // (is_alloc, tag, bytes); tag = micro*2 (+1 for output)
    for e in &events {
        let act = cfg.activation_bytes[e.micro];
        if e.forward {
            actions.push((true, e.micro * 2, act));
            if !cfg.deallocate_outputs && cfg.output_bytes > 0 {
                actions.push((true, e.micro * 2 + 1, cfg.output_bytes));
            }
        } else {
            actions.push((false, e.micro * 2, act));
            if !cfg.deallocate_outputs && cfg.output_bytes > 0 {
                actions.push((false, e.micro * 2 + 1, cfg.output_bytes));
            }
        }
    }
    actions
}

/// Runs the action list against an arena of `capacity`; `Ok(peak_live)` on
/// success, `Err` on the first failed allocation.
fn try_replay(actions: &[(bool, usize, u64)], capacity: u64) -> Result<u64, AllocError> {
    let mut alloc = CachingAllocator::new(capacity);
    let mut ids: HashMap<usize, AllocId> = HashMap::new();
    for &(is_alloc, tag, bytes) in actions {
        if bytes == 0 {
            continue;
        }
        if is_alloc {
            let id = alloc.malloc(bytes)?;
            ids.insert(tag, id);
        } else {
            let id = ids.remove(&tag).expect("free of untracked block");
            alloc.free(id);
        }
    }
    Ok(alloc.stats().peak_allocated)
}

/// Replays one stage's trace and reports peak live bytes and the minimal
/// arena a best-fit caching allocator needs (binary search).
///
/// # Panics
///
/// Panics if `cfg.activation_bytes` is shorter than the microbatch indices
/// appearing in the trace, or every event belongs to another stage.
pub fn replay_stage_memory(
    stage_events: &[TraceEvent],
    stage: usize,
    cfg: &ReplayConfig,
) -> ReplayReport {
    let mine: Vec<TraceEvent> = stage_events.iter().copied().filter(|e| e.stage == stage).collect();
    assert!(!mine.is_empty(), "no events for stage {stage}");
    let actions = stage_actions(&mine, cfg);
    let total: u64 = actions.iter().filter(|a| a.0).map(|a| a.2).sum();
    let peak_live = try_replay(&actions, total.max(1)).expect("unbounded arena cannot fail");
    // Binary search the minimal capacity in [peak_live, total].
    let (mut lo, mut hi) = (peak_live.max(1), total.max(1));
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if try_replay(&actions, mid).is_ok() {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    ReplayReport { peak_live_bytes: peak_live, minimal_arena_bytes: lo }
}

/// The live-activation-bytes timeline of one stage: `(time_ms, live_bytes)`
/// after each schedule event — the memory view of the paper's Figure 10,
/// suitable for plotting alongside the compute timeline.
///
/// # Panics
///
/// Panics if no event belongs to `stage` or a microbatch index exceeds
/// `cfg.activation_bytes`.
pub fn live_bytes_series(
    stage_events: &[TraceEvent],
    stage: usize,
    cfg: &ReplayConfig,
) -> Vec<(f64, u64)> {
    let mut mine: Vec<&TraceEvent> = stage_events.iter().filter(|e| e.stage == stage).collect();
    assert!(!mine.is_empty(), "no events for stage {stage}");
    mine.sort_by(|a, b| a.end_ms.partial_cmp(&b.end_ms).expect("finite times"));
    let mut live = 0u64;
    let mut series = Vec::with_capacity(mine.len());
    for e in mine {
        let mut delta = cfg.activation_bytes[e.micro];
        if !cfg.deallocate_outputs {
            delta += cfg.output_bytes;
        }
        if e.forward {
            live += delta;
        } else {
            live -= delta;
        }
        series.push((e.end_ms, live));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PipelineSim, StageCosts};

    fn first_stage_trace(p: usize, n: u64, budget: Option<&[u64]>) -> Vec<TraceEvent> {
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.5), p, n, 0.05);
        sim.trace_1f1b(budget).1
    }

    #[test]
    fn uniform_blocks_do_not_fragment() {
        // Identical per-microbatch sizes: holes are reused exactly, so the
        // minimal arena equals the peak live bytes.
        let events = first_stage_trace(4, 12, None);
        let cfg = ReplayConfig {
            activation_bytes: vec![100; 12],
            output_bytes: 0,
            deallocate_outputs: true,
        };
        let report = replay_stage_memory(&events, 0, &cfg);
        assert_eq!(report.peak_live_bytes, 400, "4 in-flight × 100");
        assert_eq!(report.minimal_arena_bytes, report.peak_live_bytes);
        assert_eq!(report.fragmentation_overhead(), 0.0);
    }

    #[test]
    fn pinned_outputs_increase_the_arena() {
        // Appendix B in allocator terms: keeping output tensors until the
        // backward raises the live peak.
        let events = first_stage_trace(4, 12, None);
        let base = ReplayConfig {
            activation_bytes: vec![100; 12],
            output_bytes: 10,
            deallocate_outputs: true,
        };
        let pinned = ReplayConfig { deallocate_outputs: false, ..base.clone() };
        let a = replay_stage_memory(&events, 0, &base);
        let b = replay_stage_memory(&events, 0, &pinned);
        assert!(b.peak_live_bytes > a.peak_live_bytes);
        assert_eq!(b.peak_live_bytes - a.peak_live_bytes, 4 * 10, "2·sbh·p analogue");
    }

    #[test]
    fn appendix_c_periodic_mixing_reuses_holes() {
        // Appendix C's stored-full/checkpointed mixing is *periodic* (the
        // window slides one microbatch at a time), so a best-fit allocator
        // reuses each hole exactly: no fragmentation despite mixed sizes.
        let p = 4;
        let n = 16u64;
        let budget = vec![1u64; p];
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.5), p, n, 0.05);
        let (result, events) = sim.trace_1f1b(Some(&budget));
        let mut activation_bytes = vec![0u64; n as usize];
        for e in events.iter().filter(|e| e.stage == 0 && !e.forward) {
            activation_bytes[e.micro] = if e.recomputed { 25 } else { 340 };
        }
        assert!(result.stored_full[0] > 1, "the window moved");
        let cfg = ReplayConfig { activation_bytes, output_bytes: 0, deallocate_outputs: true };
        let report = replay_stage_memory(&events, 0, &cfg);
        assert_eq!(report.minimal_arena_bytes, report.peak_live_bytes);
    }

    #[test]
    fn variable_microbatch_sizes_with_pinned_outputs_fragment() {
        // The paper's "memory fragmentation for large microbatches" future
        // work, reproduced: microbatches of varying size (e.g. unpadded
        // variable-length sequences) whose large blocks are separated by
        // small pinned output tensors leave holes a later, larger
        // allocation cannot use — the arena must exceed the live peak.
        let n = 24u64;
        let events = first_stage_trace(4, n, None);
        // Deterministic pseudo-random sizes in [60, 210].
        let activation_bytes: Vec<u64> = (0..n).map(|m| 60 + (m * 97 + 13) % 151).collect();
        let cfg = ReplayConfig {
            activation_bytes: activation_bytes.clone(),
            output_bytes: 7,
            deallocate_outputs: false,
        };
        let report = replay_stage_memory(&events, 0, &cfg);
        assert!(
            report.minimal_arena_bytes > report.peak_live_bytes,
            "expected fragmentation: arena {} vs live {}",
            report.minimal_arena_bytes,
            report.peak_live_bytes
        );
        // The Appendix B deallocation removes the pinning and shrinks (or
        // eliminates) the overhead.
        let dealloc = ReplayConfig { activation_bytes, output_bytes: 7, deallocate_outputs: true };
        let better = replay_stage_memory(&events, 0, &dealloc);
        assert!(better.minimal_arena_bytes <= report.minimal_arena_bytes);
        assert!(better.peak_live_bytes < report.peak_live_bytes);
    }

    #[test]
    fn later_stages_need_smaller_arenas() {
        let events = first_stage_trace(4, 12, None);
        let cfg = ReplayConfig {
            activation_bytes: vec![100; 12],
            output_bytes: 0,
            deallocate_outputs: true,
        };
        let first = replay_stage_memory(&events, 0, &cfg);
        let last = replay_stage_memory(&events, 3, &cfg);
        assert!(last.minimal_arena_bytes < first.minimal_arena_bytes);
        assert_eq!(last.peak_live_bytes, 100, "one in-flight microbatch");
    }

    #[test]
    fn live_series_peaks_at_the_replay_peak() {
        let events = first_stage_trace(4, 12, None);
        let cfg = ReplayConfig {
            activation_bytes: vec![100; 12],
            output_bytes: 5,
            deallocate_outputs: false,
        };
        let series = live_bytes_series(&events, 0, &cfg);
        let peak = series.iter().map(|(_, b)| *b).max().unwrap();
        let report = replay_stage_memory(&events, 0, &cfg);
        assert_eq!(peak, report.peak_live_bytes);
        // The series starts low, peaks, and drains back to zero.
        assert_eq!(series.last().unwrap().1, 0, "all activations freed at flush");
        assert!(series[0].1 < peak);
    }

    #[test]
    #[should_panic(expected = "no events")]
    fn rejects_missing_stage() {
        let events = first_stage_trace(2, 4, None);
        let cfg = ReplayConfig {
            activation_bytes: vec![1; 4],
            output_bytes: 0,
            deallocate_outputs: true,
        };
        let _ = replay_stage_memory(&events, 7, &cfg);
    }
}
