//! Exact event-driven simulation of Megatron's **interleaved 1F1B**
//! schedule (Narayanan et al. 2021), which the paper uses for its 175B and
//! 530B runs with `m = 3` model chunks per device.
//!
//! Each device holds `m` *model chunks* of `L/(p·m)` layers; virtual stage
//! `vs = chunk · p + device` for `vs ∈ 0..p·m`. A microbatch traverses all
//! `p·m` virtual stages in order, so it visits every device `m` times. The
//! interleaving shrinks the pipeline bubble from `p−1` microbatch slots to
//! `(p−1)/m`, at the price of the first device holding
//! `2(p−1) + (m−1)·p + 1` in-flight chunk activations — which is exactly the
//! paper's `L·(1 + (p−1)/(p·m))` first-stage activation factor once
//! multiplied by the chunk size (Section 4.2.3).
//!
//! The simulation validates *both* of those closed forms: the makespan
//! against the analytic bubble, and the peak in-flight chunk count against
//! the warmup formula the memory model uses.

use crate::{SimResult, StageCosts};
use serde::{Deserialize, Serialize};

/// An interleaved-1F1B pipeline: `p` devices × `m` chunks per device,
/// processing `n` microbatches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterleavedSim {
    /// Per **chunk-unit** costs: one microbatch through one model chunk
    /// (`L/(p·m)` layers).
    pub chunk_costs: StageCosts,
    /// Devices (pipeline size `p`).
    pub devices: usize,
    /// Model chunks per device (`m`).
    pub chunks: usize,
    /// Microbatches per iteration; must be a multiple of `p` (Megatron's
    /// interleaving constraint).
    pub num_micro: u64,
    /// Device-boundary transfer milliseconds.
    pub p2p_ms: f64,
}

/// One schedulable unit: forward or backward of (chunk, microbatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Unit {
    is_fwd: bool,
    chunk: usize,
    micro: usize,
}

impl InterleavedSim {
    /// Virtual-stage index of `(chunk, device)`.
    fn virtual_stage(&self, chunk: usize, device: usize) -> usize {
        chunk * self.devices + device
    }

    /// Megatron's unit ordering: the `k`-th forward unit on a device is
    /// microbatch `(k / (p·m))·p + k % p` of chunk `(k / p) % m`.
    fn fwd_unit(&self, k: usize) -> Unit {
        let p = self.devices;
        let m = self.chunks;
        Unit { is_fwd: true, chunk: (k / p) % m, micro: (k / (p * m)) * p + k % p }
    }

    /// Backward units mirror forwards with the chunk order reversed.
    fn bwd_unit(&self, k: usize) -> Unit {
        let p = self.devices;
        let m = self.chunks;
        Unit { is_fwd: false, chunk: m - 1 - (k / p) % m, micro: (k / (p * m)) * p + k % p }
    }

    /// Warmup length for a device: `2(p − d − 1) + (m − 1)·p + 1`, capped at
    /// the total unit count.
    fn warmup(&self, device: usize) -> usize {
        let total = self.num_micro as usize * self.chunks;
        (2 * (self.devices - device - 1) + (self.chunks - 1) * self.devices + 1).min(total)
    }

    /// Per-device unit order: warmup forwards, steady (F, B) pairs, cooldown
    /// backwards.
    fn device_ops(&self, device: usize) -> Vec<Unit> {
        let total = self.num_micro as usize * self.chunks;
        let w = self.warmup(device);
        let mut ops = Vec::with_capacity(2 * total);
        for k in 0..w {
            ops.push(self.fwd_unit(k));
        }
        for j in 0..(total - w) {
            ops.push(self.fwd_unit(w + j));
            ops.push(self.bwd_unit(j));
        }
        for k in (total - w)..total {
            ops.push(self.bwd_unit(k));
        }
        ops
    }

    /// Runs the event-driven simulation.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or `num_micro` is not a multiple of the
    /// device count.
    pub fn simulate(&self) -> SimResult {
        self.simulate_core().0
    }

    /// [`InterleavedSim::simulate`], additionally replaying the schedule onto
    /// `tracer` as one `fwd_chunk`/`bwd_chunk` span per (virtual stage,
    /// microbatch) unit. Spans use the **simulated** clock (1 simulated ms =
    /// 1 µs of trace time) and land on track = device index, so the Chrome
    /// trace renders the familiar pipeline "staircase" with one lane per
    /// device.
    pub fn simulate_traced(&self, tracer: &mt_trace::Tracer) -> SimResult {
        let (result, f_end, b_end) = self.simulate_core();
        if !tracer.is_enabled() {
            return result;
        }
        let p = self.devices;
        let fwd_dur = self.chunk_costs.forward_ms;
        let bwd_dur = self.chunk_costs.backward_ms + self.chunk_costs.recompute_ms;
        for (vs, (f_row, b_row)) in f_end.iter().zip(&b_end).enumerate() {
            let device = vs % p;
            let chunk = vs / p;
            for micro in 0..f_row.len() {
                let args = move || {
                    vec![
                        ("chunk", mt_trace::ArgValue::U64(chunk as u64)),
                        ("micro", mt_trace::ArgValue::U64(micro as u64)),
                        ("virtual_stage", mt_trace::ArgValue::U64(vs as u64)),
                    ]
                };
                // The event loop sets end = start + dur, so start = end − dur.
                tracer.complete_at(
                    "fwd_chunk",
                    device as u32,
                    (f_row[micro] - fwd_dur) * 1_000.0,
                    fwd_dur * 1_000.0,
                    args(),
                );
                tracer.complete_at(
                    "bwd_chunk",
                    device as u32,
                    (b_row[micro] - bwd_dur) * 1_000.0,
                    bwd_dur * 1_000.0,
                    args(),
                );
            }
        }
        result
    }

    fn simulate_core(&self) -> (SimResult, Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let p = self.devices;
        let m = self.chunks;
        let n = self.num_micro as usize;
        assert!(p > 0 && m > 0 && n > 0, "dimensions must be positive");
        assert!(
            n.is_multiple_of(p),
            "interleaved schedule needs microbatches ({n}) divisible by devices ({p})"
        );

        let ops: Vec<Vec<Unit>> = (0..p).map(|d| self.device_ops(d)).collect();
        let vstages = p * m;
        // Completion times per (virtual stage, micro); NaN = not done.
        let mut f_end = vec![vec![f64::NAN; n]; vstages];
        let mut b_end = vec![vec![f64::NAN; n]; vstages];
        let mut next_op = vec![0usize; p];
        let mut clock = vec![0.0_f64; p];
        let mut busy = vec![0.0_f64; p];

        let mut remaining: usize = ops.iter().map(|o| o.len()).sum();
        while remaining > 0 {
            let mut progressed = false;
            for d in 0..p {
                while next_op[d] < ops[d].len() {
                    let u = ops[d][next_op[d]];
                    let vs = self.virtual_stage(u.chunk, d);
                    let ready = if u.is_fwd {
                        if vs == 0 {
                            Some(0.0)
                        } else if f_end[vs - 1][u.micro].is_nan() {
                            None
                        } else {
                            Some(f_end[vs - 1][u.micro] + self.p2p_ms)
                        }
                    } else if vs == vstages - 1 {
                        if f_end[vs][u.micro].is_nan() {
                            None
                        } else {
                            Some(f_end[vs][u.micro])
                        }
                    } else if b_end[vs + 1][u.micro].is_nan() {
                        None
                    } else {
                        Some(b_end[vs + 1][u.micro] + self.p2p_ms)
                    };
                    let Some(ready) = ready else { break };
                    let start = clock[d].max(ready);
                    let dur = if u.is_fwd {
                        self.chunk_costs.forward_ms
                    } else {
                        self.chunk_costs.backward_ms + self.chunk_costs.recompute_ms
                    };
                    clock[d] = start + dur;
                    busy[d] += dur;
                    if u.is_fwd {
                        f_end[vs][u.micro] = clock[d];
                    } else {
                        b_end[vs][u.micro] = clock[d];
                    }
                    next_op[d] += 1;
                    remaining -= 1;
                    progressed = true;
                }
            }
            assert!(progressed, "interleaved schedule deadlocked (internal error)");
        }

        let makespan = clock.iter().fold(0.0_f64, |a, &b| a.max(b));
        // Peak simultaneously-live chunk activations per device.
        let peak_in_flight = (0..p)
            .map(|d| {
                let mut events: Vec<(f64, i64)> = Vec::with_capacity(2 * n * m);
                for c in 0..m {
                    let vs = self.virtual_stage(c, d);
                    for mb in 0..n {
                        events.push((f_end[vs][mb], 1));
                        events.push((b_end[vs][mb], -1));
                    }
                }
                events.sort_by(|a, b| {
                    a.0.partial_cmp(&b.0).expect("finite times").then(a.1.cmp(&b.1))
                });
                let mut cur = 0i64;
                let mut peak = 0i64;
                for (_, delta) in events {
                    cur += delta;
                    peak = peak.max(cur);
                }
                peak as u64
            })
            .collect();

        (
            SimResult {
                makespan_ms: makespan,
                stage_busy_ms: busy,
                peak_in_flight,
                stored_full: vec![0; p],
            },
            f_end,
            b_end,
        )
    }

    /// The analytic iteration time the paper's schedule analysis predicts:
    /// `(n + (p−1)/m) · m · (f_chunk + b_chunk)`.
    pub fn analytic_ms(&self) -> f64 {
        let per_micro_device = self.chunks as f64
            * (self.chunk_costs.forward_ms
                + self.chunk_costs.backward_ms
                + self.chunk_costs.recompute_ms);
        (self.num_micro as f64 + (self.devices as f64 - 1.0) / self.chunks as f64)
            * per_micro_device
    }

    /// The first-device in-flight chunk bound the memory model uses:
    /// `2(p−1) + (m−1)·p + 1`, capped at `n·m`.
    pub fn first_device_in_flight_bound(&self) -> u64 {
        self.warmup(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(p: usize, m: usize, n: u64) -> InterleavedSim {
        InterleavedSim {
            chunk_costs: StageCosts::new(1.0, 2.0, 0.0),
            devices: p,
            chunks: m,
            num_micro: n,
            p2p_ms: 0.0,
        }
    }

    #[test]
    fn unit_ordering_covers_all_units_once() {
        let s = sim(4, 3, 8);
        for d in 0..4 {
            let ops = s.device_ops(d);
            assert_eq!(ops.len(), 2 * 8 * 3);
            let mut seen_f = std::collections::HashSet::new();
            let mut seen_b = std::collections::HashSet::new();
            for u in ops {
                let set = if u.is_fwd { &mut seen_f } else { &mut seen_b };
                assert!(set.insert((u.chunk, u.micro)), "duplicate {u:?}");
            }
            assert_eq!(seen_f.len(), 24);
            assert_eq!(seen_b.len(), 24);
        }
    }

    #[test]
    fn makespan_matches_analytic_bubble() {
        // The event simulation should land within a few percent of the
        // closed form (exactly equal for f = b; here b = 2f costs a small
        // extra warmup skew).
        for (p, m, n) in [(4usize, 2usize, 8u64), (4, 3, 12), (8, 3, 24)] {
            let s = sim(p, m, n);
            let measured = s.simulate().makespan_ms;
            let analytic = s.analytic_ms();
            let rel = (measured - analytic).abs() / analytic;
            assert!(rel < 0.10, "p={p} m={m} n={n}: measured {measured} vs analytic {analytic}");
        }
    }

    #[test]
    fn interleaving_beats_plain_1f1b() {
        // Same total per-device work, smaller bubble.
        let p = 8;
        let n = 16;
        let m = 4;
        let inter = sim(p, m, n).simulate().makespan_ms;
        // Plain 1F1B with the whole device's layers as one chunk.
        let plain = crate::PipelineSim::uniform(
            StageCosts::new(m as f64 * 1.0, m as f64 * 2.0, 0.0),
            p,
            n,
            0.0,
        )
        .simulate_1f1b(None)
        .makespan_ms;
        assert!(inter < plain, "interleaved {inter} vs plain {plain}");
    }

    #[test]
    fn m_equals_one_degenerates_to_plain_1f1b() {
        let p = 4;
        let n = 8;
        let inter = sim(p, 1, n).simulate().makespan_ms;
        let plain = crate::PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.0), p, n, 0.0)
            .simulate_1f1b(None)
            .makespan_ms;
        assert!((inter - plain).abs() < 1e-9, "{inter} vs {plain}");
    }

    #[test]
    fn first_device_in_flight_matches_paper_memory_factor() {
        // peak chunks on device 0 == 2(p−1) + (m−1)p + 1, i.e. the paper's
        // L(1 + (p−1)/(pm)) factor × (pm / L) chunks.
        for (p, m) in [(4usize, 3usize), (8, 3), (4, 2)] {
            let n = (4 * p) as u64;
            let s = sim(p, m, n);
            let r = s.simulate();
            let bound = s.first_device_in_flight_bound();
            // The simulation counts the chunk currently being
            // back-propagated as still live, so it may read bound + 1; the
            // paper's factor corresponds to `bound`.
            assert!(
                r.peak_in_flight[0] == bound || r.peak_in_flight[0] == bound + 1,
                "p={p} m={m}: simulated {} vs bound {bound}",
                r.peak_in_flight[0]
            );
            // And the paper's factor follows to within one chunk.
            let layers_factor = bound as f64 / (p * m) as f64; // in units of L
            let paper = 1.0 + (p as f64 - 1.0) / (p * m) as f64;
            assert!((layers_factor - paper).abs() < 1e-9);
        }
    }

    #[test]
    fn later_devices_hold_fewer_chunks() {
        let s = sim(8, 3, 24);
        let r = s.simulate();
        for w in r.peak_in_flight.windows(2) {
            assert!(
                w[0] >= w[1],
                "in-flight must not increase along the pipeline: {:?}",
                r.peak_in_flight
            );
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn rejects_micro_count_not_divisible_by_devices() {
        let _ = sim(4, 2, 6).simulate();
    }

    #[test]
    fn traced_simulation_emits_one_span_per_unit_on_its_device_lane() {
        let s = sim(4, 3, 8);
        let tracer = mt_trace::Tracer::enabled();
        let result = s.simulate_traced(&tracer);
        assert_eq!(result.makespan_ms, s.simulate().makespan_ms, "tracing must not change the sim");
        let events = tracer.events();
        // One fwd + one bwd span per (virtual stage, microbatch).
        let units = 4 * 3 * 8;
        assert_eq!(events.len(), 2 * units);
        for d in 0..4u32 {
            // Each device lane holds exactly its share, never overlapping:
            // a device executes one chunk-unit at a time.
            let mut lane: Vec<(f64, f64)> = events
                .iter()
                .filter(|e| e.track == d)
                .map(|e| match e.kind {
                    mt_trace::EventKind::Complete { dur_us } => (e.ts_us, e.ts_us + dur_us),
                    _ => panic!("pipeline trace must be all complete events"),
                })
                .collect();
            assert_eq!(lane.len(), 2 * 3 * 8, "device {d}");
            lane.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in lane.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-9, "device {d} spans overlap: {w:?}");
            }
            // The lane ends exactly at the simulated makespan (µs = ms·1000).
            let end = lane.iter().fold(0.0_f64, |a, s| a.max(s.1));
            assert!(end <= result.makespan_ms * 1_000.0 + 1e-6);
        }
        // The trace is a well-formed Chrome trace.
        let json = mt_trace::export::chrome_trace(&events);
        mt_trace::export::validate_chrome_trace(&json).expect("valid chrome trace");
    }

    #[test]
    fn recompute_increases_interleaved_makespan() {
        let base = sim(4, 3, 8).simulate().makespan_ms;
        let mut with = sim(4, 3, 8);
        with.chunk_costs = StageCosts::new(1.0, 2.0, 0.9);
        assert!(with.simulate().makespan_ms > base);
    }
}
