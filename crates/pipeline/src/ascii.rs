//! ASCII rendering of executed schedules — the reproduction of the paper's
//! Figure 10 (and the classic 1F1B diagrams of Section 4.2.3): one row per
//! pipeline stage, time flowing right, forward/backward/recompute steps
//! drawn as labelled boxes.
//!
//! * `F` — forward with checkpointing (Figure 10's yellow),
//! * `f` — forward storing all activations (Figure 10's white),
//! * `B` — backward (blue), with recomputation folded in when the schedule
//!   recomputed (Figure 10 draws this as a red box before the blue one; in
//!   one-character-per-column ASCII it is written `R` for the recomputing
//!   prefix of the step).

use crate::TraceEvent;

/// Renders trace events as an ASCII timeline of `width` columns.
///
/// Each stage becomes one row; every op paints its microbatch digit
/// (mod 10) over its time span — forwards as digits, backwards as `·`-backed
/// digits are distinguished by a leading marker row legend instead; see
/// [`render_schedule`] for the richer two-characters-per-op variant used by
/// the examples.
///
/// # Panics
///
/// Panics if `events` is empty or `width == 0`.
pub fn render_timeline(events: &[TraceEvent], width: usize) -> String {
    assert!(!events.is_empty(), "no events to render");
    assert!(width > 0, "width must be positive");
    let stages = events.iter().map(|e| e.stage).max().expect("nonempty") + 1;
    let t_max = events.iter().fold(0.0_f64, |m, e| m.max(e.end_ms));
    let col = |t: f64| ((t / t_max) * width as f64).min(width as f64 - 1.0) as usize;
    let mut rows = vec![vec![' '; width]; stages];
    for e in events {
        let (c0, c1) = (col(e.start_ms), col(e.end_ms).max(col(e.start_ms)));
        let digit = char::from_digit((e.micro % 10) as u32, 10).expect("mod 10");
        #[allow(clippy::needless_range_loop)] // c spans a column range, not a full slice
        for c in c0..=c1 {
            rows[e.stage][c] = if e.forward {
                digit
            } else if c == c0 && e.recomputed {
                'R'
            } else {
                '.'
            };
        }
    }
    let mut out = String::new();
    for (s, row) in rows.iter().enumerate() {
        out.push_str(&format!("stage {s:>2} |"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push_str("          forwards: microbatch digit · backwards: '.' (R = recompute prefix)\n");
    out
}

/// Renders the per-stage op *order* (not to time scale): one cell per op,
/// `F3`/`f3` for forwards (checkpointing / store-all) and `B3`/`R3` for
/// backwards (plain / with recomputation) of microbatch 3 — the layout of
/// the paper's Figure 10 grid.
///
/// # Panics
///
/// Panics if `events` is empty.
pub fn render_schedule(events: &[TraceEvent]) -> String {
    assert!(!events.is_empty(), "no events to render");
    let stages = events.iter().map(|e| e.stage).max().expect("nonempty") + 1;
    let mut per_stage: Vec<Vec<&TraceEvent>> = vec![Vec::new(); stages];
    for e in events {
        per_stage[e.stage].push(e);
    }
    for stage in &mut per_stage {
        stage.sort_by(|a, b| a.start_ms.partial_cmp(&b.start_ms).expect("finite"));
    }
    let mut out = String::new();
    for (s, ops) in per_stage.iter().enumerate() {
        out.push_str(&format!("stage {s:>2} |"));
        for e in ops {
            let sym = if e.forward {
                'F'
            } else if e.recomputed {
                'R'
            } else {
                'B'
            };
            out.push_str(&format!(" {sym}{}", e.micro));
        }
        out.push_str(" |\n");
    }
    out.push_str("          F = forward, B = backward, R = backward with recomputation\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PipelineSim, StageCosts};

    fn events() -> Vec<TraceEvent> {
        PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.5), 3, 4, 0.1)
            .trace_1f1b(Some(&[1, 1, 1]))
            .1
    }

    #[test]
    fn timeline_has_one_row_per_stage() {
        let text = render_timeline(&events(), 60);
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows.len(), 4); // 3 stages + legend
        assert!(rows[0].starts_with("stage  0 |"));
        assert!(rows[2].contains('|'));
    }

    #[test]
    fn schedule_grid_lists_every_op_in_order() {
        let text = render_schedule(&events());
        let row0 = text.lines().next().unwrap();
        // Stage 0 of a p=3 1F1B run warms up with two forwards.
        assert!(row0.contains("F0 F1"), "warmup forwards first: {row0}");
        // 4 forwards + 4 backwards per stage.
        let ops = row0.matches(['F', 'B', 'R']).count();
        assert_eq!(ops, 8);
    }

    #[test]
    fn recomputing_and_stored_backwards_are_distinguished() {
        let text = render_schedule(&events());
        assert!(text.contains('R'), "budget 1 leaves recomputing microbatches");
        assert!(text.contains('B'), "budget 1 stores one microbatch window");
    }

    #[test]
    fn full_budget_removes_all_recompute_marks() {
        let (_, ev) = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.5), 3, 4, 0.1)
            .trace_1f1b(Some(&[4, 4, 4]));
        let text = render_schedule(&ev);
        assert!(!text.lines().take(3).any(|l| l.contains('R')));
    }

    #[test]
    #[should_panic(expected = "no events")]
    fn rejects_empty_traces() {
        let _ = render_timeline(&[], 40);
    }
}
