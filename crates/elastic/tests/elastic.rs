//! The headline guarantee of elastic recovery: a run that loses ranks
//! mid-training and re-forms at a smaller degree produces losses and final
//! unsharded weights `to_bits`-identical to a fault-free run that takes
//! the same degree changes as voluntary planned resizes — plus the
//! re-sharding round-trip proofs and the bounded chaos soak. (Runs at
//! *different* degrees agree only to the repo's standard cross-degree
//! tolerance, because each degree reduces in a different floating-point
//! order; the recovery machinery itself must add zero perturbation.)
//!
//! The whole file runs under whichever kernel backend
//! `MT_KERNEL_BACKEND` selects; CI runs it under both.

use mt_elastic::{
    reshard_checkpoints, reshard_zero_states, soak, soak_batch, train_elastic, unsharded_bits,
    ElasticConfig, ElasticError, PlannedResize, SoakConfig,
};
use mt_fault::FaultPlan;
use mt_memory::Recompute;
use mt_model::gpt::Gpt;
use mt_model::trainer::{Trainer, TrainerConfig};
use mt_model::zero::ZeroAdam;
use mt_model::{ExecMode, TransformerConfig};
use mt_tensor::rng::SplitMix64;
use mt_tensor::Tensor;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cfg() -> TransformerConfig {
    TransformerConfig {
        hidden: 16,
        heads: 4,
        seq: 8,
        micro_batch: 2,
        layers: 2,
        vocab: 24,
        dropout_p: 0.1,
        causal: true,
    }
}

fn ec(total_steps: u64) -> ElasticConfig {
    ElasticConfig {
        total_steps,
        checkpoint_every: 3,
        max_failures: 4,
        collective_timeout: Duration::from_secs(10),
        planned: Vec::new(),
    }
}

/// A rank panic mid-training shrinks the world from t=4 to t′=2, and the
/// recovered run is bit-identical to a fault-free run that *plans* the
/// same shrink at the same step: the paper repo's recovery story upgraded
/// from "restart the segment" to "keep going with the survivors", and the
/// recovery path provably adds nothing on top of the degree change.
#[test]
fn death_shrinks_the_world_and_stays_bit_identical() {
    let c = cfg();
    let init = Gpt::init(c, Recompute::Selective, 41);
    let data = |step: u64| soak_batch(&c, step);

    // Control: no faults, but a voluntary 4 → 2 resize at the checkpoint
    // the recovered run will resume from.
    let control_ec =
        ElasticConfig { planned: vec![PlannedResize { at_step: 3, degree: 2 }], ..ec(8) };
    let (clean, clean_report) = train_elastic(
        &init,
        4,
        Recompute::Selective,
        TrainerConfig::default(),
        &control_ec,
        Arc::new(FaultPlan::none()),
        data,
    )
    .expect("fault-free planned-resize run succeeds");
    assert_eq!(clean_report.reforms.len(), 1);
    assert_eq!(clean_report.reforms[0].dead_ranks, Vec::<usize>::new(), "planned, nobody died");
    assert_eq!(clean_report.final_degree, 2);
    assert_eq!(clean_report.final_epoch, 1);

    // Rank 1 dies at step 4 — mid-second-segment, after one checkpoint.
    let plan = FaultPlan::builder().panic_at_step(1, 4).build();
    let (models, report) = train_elastic(
        &init,
        4,
        Recompute::Selective,
        TrainerConfig::default(),
        &ec(8),
        Arc::new(plan),
        data,
    )
    .expect("elastic recovery succeeds");

    assert_eq!(report.reforms.len(), 1, "failures: {:?}", report.failures);
    let reform = &report.reforms[0];
    assert_eq!(reform.epoch, 1);
    assert_eq!(reform.from_degree, 4);
    assert_eq!(reform.to_degree, 2, "3 survivors, largest dividing degree is 2");
    assert_eq!(reform.dead_ranks, vec![1]);
    assert_eq!(reform.resume_step, 3, "resumes from the committed checkpoint");
    assert_eq!(report.final_degree, 2);
    assert_eq!(report.final_epoch, 1);
    assert_eq!(report.retries, 0, "a death is a reform, not a retry");
    assert_eq!(models.len(), 2);

    // MTTR phases were clocked: detect spans the failed attempt, replay
    // the committed re-execution. (Consensus/reshard can round to zero on
    // a fast machine; the sum cannot.)
    assert!(reform.mttr.detect > Duration::ZERO);
    assert!(reform.mttr.replay > Duration::ZERO);
    assert!(reform.mttr.total() >= reform.mttr.detect + reform.mttr.replay);

    // The headline: loss trajectory and final unsharded weights match the
    // planned-resize run bit for bit — detection, consensus, re-sharding,
    // and replay perturbed nothing.
    assert_eq!(report.stats.len(), 8);
    for (a, b) in clean_report.stats.iter().zip(&report.stats) {
        assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "loss diverged at step {}", a.step);
    }
    assert_eq!(unsharded_bits(&clean), unsharded_bits(&models));
}

/// Two deaths across two segments: t=4 → t′=2 → t′′=1, still bit-exact
/// against a control that plans both shrinks. The second formation runs
/// at epoch 2, and the final "world" is serial.
#[test]
fn consecutive_deaths_shrink_to_serial_and_stay_bit_identical() {
    let c = cfg();
    let init = Gpt::init(c, Recompute::Selective, 43);
    let data = |step: u64| soak_batch(&c, step);

    let control_ec = ElasticConfig {
        planned: vec![
            PlannedResize { at_step: 3, degree: 2 },
            PlannedResize { at_step: 6, degree: 1 },
        ],
        ..ec(9)
    };
    let (clean, clean_report) = train_elastic(
        &init,
        4,
        Recompute::Selective,
        TrainerConfig::default(),
        &control_ec,
        Arc::new(FaultPlan::none()),
        data,
    )
    .expect("fault-free planned-resize run succeeds");

    // Rank 2 dies in segment two (t=4); after the reform to t′=2, rank 0
    // of the *new* formation dies in segment three.
    let plan = FaultPlan::builder().panic_at_step(2, 4).panic_at_step(0, 7).build();
    let (models, report) = train_elastic(
        &init,
        4,
        Recompute::Selective,
        TrainerConfig::default(),
        &ec(9),
        Arc::new(plan),
        data,
    )
    .expect("two reforms within the failure budget");

    assert_eq!(report.reforms.len(), 2, "failures: {:?}", report.failures);
    assert_eq!(report.reforms[0].from_degree, 4);
    assert_eq!(report.reforms[0].to_degree, 2);
    assert_eq!(report.reforms[1].from_degree, 2);
    assert_eq!(report.reforms[1].to_degree, 1);
    assert_eq!(report.reforms[1].epoch, 2);
    assert_eq!(report.final_degree, 1);
    assert_eq!(report.final_epoch, 2);
    assert_eq!(models.len(), 1, "a serial world holds the full model");

    for (a, b) in clean_report.stats.iter().zip(&report.stats) {
        assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "loss diverged at step {}", a.step);
    }
    assert_eq!(unsharded_bits(&clean), unsharded_bits(&models));
}

/// A transient failure (no death) replays at the same degree — the world
/// does not shrink just because a collective hiccuped.
#[test]
fn transient_failure_retries_at_the_same_degree() {
    let c = cfg();
    let init = Gpt::init(c, Recompute::Selective, 47);
    let data = |step: u64| soak_batch(&c, step);

    let plan = FaultPlan::builder().transient_at_step(3, 4).build();
    let (models, report) = train_elastic(
        &init,
        4,
        Recompute::Selective,
        TrainerConfig::default(),
        &ec(8),
        Arc::new(plan),
        data,
    )
    .expect("transient is absorbed");
    assert_eq!(report.retries, 1);
    assert_eq!(report.reforms.len(), 0, "no reform for a transient");
    assert_eq!(report.final_degree, 4);
    assert_eq!(models.len(), 4);

    let (clean, _) = train_elastic(
        &init,
        4,
        Recompute::Selective,
        TrainerConfig::default(),
        &ec(8),
        Arc::new(FaultPlan::none()),
        data,
    )
    .expect("fault-free run succeeds");
    assert_eq!(unsharded_bits(&clean), unsharded_bits(&models));
}

/// Planned elasticity is a feature, not just a test control: a run can
/// voluntarily shrink *and grow back* at checkpoint boundaries through
/// the same consensus + re-shard path, with every reform recorded.
#[test]
fn planned_resizes_can_shrink_and_grow() {
    let c = cfg();
    let init = Gpt::init(c, Recompute::Selective, 61);
    let data = |step: u64| soak_batch(&c, step);

    let planned_ec = ElasticConfig {
        planned: vec![
            PlannedResize { at_step: 3, degree: 2 },
            PlannedResize { at_step: 6, degree: 4 },
        ],
        ..ec(9)
    };
    let (models, report) = train_elastic(
        &init,
        4,
        Recompute::Selective,
        TrainerConfig::default(),
        &planned_ec,
        Arc::new(FaultPlan::none()),
        data,
    )
    .expect("planned shrink-then-grow succeeds");

    assert_eq!(report.reforms.len(), 2);
    assert_eq!(report.reforms[0].to_degree, 2);
    assert_eq!(report.reforms[1].from_degree, 2);
    assert_eq!(report.reforms[1].to_degree, 4, "the world grew back");
    assert!(report.reforms.iter().all(|r| r.dead_ranks.is_empty()));
    assert_eq!(report.final_degree, 4);
    assert_eq!(report.final_epoch, 2);
    assert_eq!(models.len(), 4);
    assert_eq!(report.stats.len(), 9);

    // The middle segment ran at t=2, so the run as a whole is only
    // tolerance-close to an all-t=4 run — but it is a *valid* training
    // run: losses are finite and the final weights unshard cleanly.
    assert!(report.stats.iter().all(|s| s.loss.is_finite()));
    assert_eq!(unsharded_bits(&models).len(), unsharded_bits(std::slice::from_ref(&init)).len());
}

/// The failure budget is enforced across reforms and retries alike.
#[test]
fn failure_budget_exhaustion_is_a_terminal_error() {
    let c = cfg();
    let init = Gpt::init(c, Recompute::None, 53);
    let data = |step: u64| soak_batch(&c, step);
    let plan = FaultPlan::builder()
        .transient_at_step(0, 0)
        .transient_at_step(1, 0)
        .transient_at_step(2, 0)
        .build();
    let tight = ElasticConfig { max_failures: 0, ..ec(2) };
    let err = train_elastic(
        &init,
        4,
        Recompute::None,
        TrainerConfig::default(),
        &tight,
        Arc::new(plan),
        data,
    )
    .expect_err("zero budget cannot absorb a fault");
    match err {
        ElasticError::Exhausted { failures } => assert_eq!(failures.len(), 1),
        other => panic!("expected Exhausted, got {other}"),
    }
}

/// Satellite 3: re-sharding a trained checkpoint t=4 → t′=2 → t=4 lands
/// on the original bytes exactly — weights, Adam moments, and every
/// replicated field.
#[test]
fn checkpoint_reshard_roundtrip_is_bit_exact() {
    let c = cfg();
    let init = Gpt::init(c, Recompute::Selective, 59);
    // Train a few steps at t=4 so the Adam moments are populated, then
    // capture the per-rank checkpoints.
    let mut world = mt_collectives::World::new(4);
    let init_ref = &init;
    let c_ref = &c;
    let ckpts: Vec<_> = world
        .run_fallible(|comm| {
            let rank = comm.rank();
            let mut trainer = Trainer::new(
                init_ref.shard(4, rank, Recompute::Selective),
                TrainerConfig::default(),
            );
            for step in 0..4u64 {
                let (tokens, targets) = soak_batch(c_ref, step);
                trainer.step(&tokens, &targets, ExecMode::TensorParallel(&comm));
            }
            Ok(trainer.save_checkpoint())
        })
        .into_iter()
        .map(|r| r.expect("rank succeeds"))
        .collect();

    let halved = reshard_checkpoints(&ckpts, 2).expect("4 -> 2");
    assert_eq!(halved.len(), 2);
    let restored = reshard_checkpoints(&halved, 4).expect("2 -> 4");
    assert_eq!(restored.len(), 4);

    let tensor_bits = |t: &Tensor| -> Vec<u32> { t.data().iter().map(|x| x.to_bits()).collect() };
    for rank in 0..4 {
        let (a, b) = (&ckpts[rank], &restored[rank]);
        assert_eq!(a.step, b.step);
        assert_eq!(a.opt.step, b.opt.step);
        assert_eq!(a.model.dropout_rng, b.model.dropout_rng);
        for (layer, (lw_a, lw_b)) in
            a.model.layer_weights.iter().zip(&b.model.layer_weights).enumerate()
        {
            for (i, (ta, tb)) in lw_a.tensors().iter().zip(lw_b.tensors()).enumerate() {
                assert_eq!(
                    tensor_bits(ta),
                    tensor_bits(tb),
                    "rank {rank} layer {layer} weight tensor #{i} changed"
                );
            }
        }
        for (which, ma, mb) in [("m", &a.opt.m, &b.opt.m), ("v", &a.opt.v, &b.opt.v)] {
            assert_eq!(ma.len(), mb.len(), "rank {rank}: {which} moment count changed");
            for (i, (ta, tb)) in ma.iter().zip(mb.iter()).enumerate() {
                assert_eq!(
                    tensor_bits(ta),
                    tensor_bits(tb),
                    "rank {rank} moment {which}[{i}] changed"
                );
            }
        }
        assert_eq!(tensor_bits(&a.model.embedding.table), tensor_bits(&b.model.embedding.table));
        assert_eq!(tensor_bits(&a.model.final_ln_gamma), tensor_bits(&b.model.final_ln_gamma));
    }
}

/// Satellite 3, ZeRO half: optimizer shards from a real dp=4 ZeRO-1 run
/// re-shard to dp=2 and back to the original bytes.
#[test]
fn zero_state_reshard_roundtrip_is_bit_exact() {
    let elements = [24usize, 16, 16, 8];
    let dp = 4usize;
    let mut world = mt_collectives::World::new(dp);
    let states: Vec<_> = world
        .run_fallible(|comm| {
            let rank = comm.rank();
            let mut rng = SplitMix64::new(7);
            let mut params: Vec<Tensor> = elements
                .iter()
                .map(|&n| {
                    Tensor::from_vec(vec![n], (0..n).map(|_| rng.next_f32()).collect())
                        .expect("param tensor")
                })
                .collect();
            let mut opt = ZeroAdam::new(0.01, &elements, dp, rank);
            for step in 0..3 {
                // Replicas contribute identical gradients (as they would
                // after TP reduction); values vary per step.
                let grads: Vec<Tensor> = elements
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| {
                        let mut g = SplitMix64::new(100 + step * 10 + i as u64);
                        Tensor::from_vec(vec![n], (0..n).map(|_| g.next_f32() - 0.5).collect())
                            .expect("grad tensor")
                    })
                    .collect();
                let grad_refs: Vec<&Tensor> = grads.iter().collect();
                opt.step(&comm, params.iter_mut().collect(), &grad_refs);
            }
            Ok(opt.state())
        })
        .into_iter()
        .map(|r| r.expect("rank succeeds"))
        .collect();

    let halved = reshard_zero_states(&states, &elements, 2).expect("4 -> 2");
    let restored = reshard_zero_states(&halved, &elements, 4).expect("2 -> 4");
    let bits = |s: &mt_model::optim::AdamState| -> Vec<u32> {
        let mut out = Vec::new();
        for t in s.m.iter().chain(s.v.iter()) {
            out.extend(t.data().iter().map(|x| x.to_bits()));
        }
        out
    };
    for rank in 0..dp {
        assert_eq!(states[rank].step, restored[rank].step);
        assert_eq!(
            bits(&states[rank]),
            bits(&restored[rank]),
            "rank {rank}: ZeRO roundtrip changed bytes"
        );
    }
}

/// The bounded chaos soak: randomized fault schedules over the Table 3
/// miniatures, every completed run bit-identical to its control, the
/// whole thing under a hard wall-clock timeout.
#[test]
fn chaos_soak_smoke_is_clean() {
    let start = Instant::now();
    let sc = SoakConfig { schedules_per_model: 1, ..SoakConfig::smoke(2026) };
    let report = soak(&sc);
    assert!(
        start.elapsed() < sc.budget + Duration::from_secs(120),
        "soak blew through its wall-clock bound"
    );
    assert!(!report.runs.is_empty() || report.skipped > 0);
    assert!(
        report.all_clean(),
        "soak found divergence or unrecovered faults: {:#?}",
        report.runs.iter().filter(|r| r.outcome != "ok" || !r.bit_identical).collect::<Vec<_>>()
    );
}
