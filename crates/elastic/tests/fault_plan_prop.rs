//! Property tests pinning the [`FaultPlan::random`] contract the chaos
//! soak leans on: same seed means the same plan, every coordinate is
//! distinct and in bounds, faults consume exactly once, and a consumed
//! Panic/Transient coordinate reports `Recovered` on its first replay and
//! is silent afterwards. If any of these drift, soak runs stop being
//! reproducible or recovery stops converging.

use mt_fault::{FaultAction, FaultKind, FaultPlan, FaultSite};
use proptest::prelude::*;

proptest! {
    /// Same seed, same plan — byte for byte; a different seed diverges
    /// somewhere in the schedule space (not guaranteed per-seed-pair, so
    /// only the equality half is universally asserted).
    #[test]
    fn random_plans_are_seed_deterministic(
        seed in 0u64..u64::MAX,
        ranks in 1usize..8,
        max_seq in 1u64..64,
        count in 0usize..12,
    ) {
        let count = count.min((ranks as u64 * max_seq) as usize);
        let a = FaultPlan::random(seed, ranks, max_seq, count);
        let b = FaultPlan::random(seed, ranks, max_seq, count);
        prop_assert_eq!(a.specs(), b.specs());
    }

    /// A random plan schedules exactly `count` faults, at distinct
    /// collective coordinates, all inside the requested space.
    #[test]
    fn random_plans_stay_in_bounds_with_distinct_sites(
        seed in 0u64..u64::MAX,
        ranks in 1usize..8,
        max_seq in 1u64..64,
        count in 0usize..12,
    ) {
        let count = count.min((ranks as u64 * max_seq) as usize);
        let plan = FaultPlan::random(seed, ranks, max_seq, count);
        prop_assert_eq!(plan.specs().len(), count);
        for (i, spec) in plan.specs().iter().enumerate() {
            prop_assert!(
                matches!(spec.site, FaultSite::Collective { .. }),
                "random plans target collectives only"
            );
            let FaultSite::Collective { rank, seq } = spec.site else { unreachable!() };
            prop_assert!(rank < ranks);
            prop_assert!(seq < max_seq);
            for other in &plan.specs()[i + 1..] {
                prop_assert_ne!(spec.site, other.site);
            }
        }
    }

    /// Consume-once: the first poll of each scheduled coordinate fires the
    /// fault's action; the second poll never repeats it. Panic/Transient
    /// report `Recovered` exactly once on replay, Delay goes silent, and
    /// every later visit returns `None` — which is what lets a replayed
    /// segment run the coordinate clean.
    #[test]
    fn faults_consume_once_and_report_recovery_on_replay(
        seed in 0u64..u64::MAX,
        ranks in 1usize..8,
        max_seq in 1u64..64,
        count in 1usize..12,
    ) {
        let count = count.min((ranks as u64 * max_seq) as usize);
        let plan = FaultPlan::random(seed, ranks, max_seq, count);
        for spec in plan.specs() {
            let FaultSite::Collective { rank, seq } = spec.site else { unreachable!() };
            let first = plan.poll_collective(rank, seq);
            let expected = match spec.kind {
                FaultKind::Panic => FaultAction::Panic,
                FaultKind::Delay { micros } => FaultAction::Delay { micros },
                FaultKind::Transient => FaultAction::Fail,
            };
            prop_assert_eq!(first, Some(expected));
            let replay = plan.poll_collective(rank, seq);
            match spec.kind {
                FaultKind::Panic | FaultKind::Transient => {
                    prop_assert_eq!(replay, Some(FaultAction::Recovered));
                }
                FaultKind::Delay { .. } => prop_assert_eq!(replay, None),
            }
            prop_assert_eq!(plan.poll_collective(rank, seq), None);
            prop_assert_eq!(plan.poll_collective(rank, seq), None);
        }
        prop_assert_eq!(plan.fired_count(), count);
    }

    /// Coordinates the plan never scheduled are silent no matter how often
    /// they are polled — firing one fault must not leak actions anywhere
    /// else in the coordinate space.
    #[test]
    fn unscheduled_coordinates_stay_silent(
        seed in 0u64..u64::MAX,
        ranks in 1usize..8,
        max_seq in 1u64..64,
        count in 1usize..12,
    ) {
        let count = count.min((ranks as u64 * max_seq) as usize);
        let plan = FaultPlan::random(seed, ranks, max_seq, count);
        // Fire everything scheduled first, then sweep the whole space.
        for spec in plan.specs() {
            let FaultSite::Collective { rank, seq } = spec.site else { unreachable!() };
            let _ = plan.poll_collective(rank, seq);
            let _ = plan.poll_collective(rank, seq);
        }
        for rank in 0..ranks {
            for seq in 0..max_seq {
                let scheduled = plan
                    .specs()
                    .iter()
                    .any(|s| s.site == FaultSite::Collective { rank, seq });
                if !scheduled {
                    prop_assert_eq!(plan.poll_collective(rank, seq), None);
                }
                prop_assert_eq!(plan.poll_step(rank, seq), None);
            }
        }
    }
}
