//! World re-formation after a rank death: survivor-degree selection and
//! the deterministic epoch-consensus barrier.

use mt_collectives::{CollectiveError, Communicator};
use mt_model::TransformerConfig;
use mt_tensor::Tensor;
use std::fmt;

/// The agreement every survivor must reach before the re-formed world may
/// take a training step: which epoch the new formation is, and which
/// committed step it resumes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Consensus {
    /// World-formation epoch of the new world (`old epoch + 1`).
    pub epoch: u64,
    /// Global step of the checkpoint the survivors replay from.
    pub resume_step: u64,
}

/// Why the epoch-consensus barrier failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ConsensusError {
    /// The consensus round itself failed (timeout, dead rank, ...).
    Collective(CollectiveError),
    /// The group maximum disagreed with this rank's proposal — the
    /// survivors do not share one view of the last committed checkpoint,
    /// and resuming would replay from the wrong step on some ranks.
    Diverged {
        /// Rank that observed the divergence.
        rank: usize,
        /// This rank's proposal.
        proposed: Consensus,
        /// The group maximum.
        agreed: Consensus,
    },
}

impl fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsensusError::Collective(e) => write!(f, "consensus round failed: {e}"),
            ConsensusError::Diverged { rank, proposed, agreed } => write!(
                f,
                "rank {rank}: consensus diverged, proposed epoch {} @ step {} \
                 but group agreed on epoch {} @ step {}",
                proposed.epoch, proposed.resume_step, agreed.epoch, agreed.resume_step
            ),
        }
    }
}

impl std::error::Error for ConsensusError {}

/// The deterministic epoch-consensus barrier: every survivor contributes
/// its `(proposed_epoch, resume_step)` pair to an `all_reduce_max` round on
/// the re-formed world and checks the maximum equals its own proposal.
///
/// Running it as the *first* collective of the new world does double duty:
/// it proves the survivors agree on where training resumes, and — because
/// the round's [`CallTag`](mt_collectives::CallTag) carries the bumped
/// epoch — it fences out any straggler still replaying the previous
/// formation, which surfaces as [`CollectiveError::SpmdMismatch`] naming
/// both epochs instead of joining (or deadlocking) the round.
///
/// # Errors
///
/// [`ConsensusError::Collective`] for a failed round,
/// [`ConsensusError::Diverged`] when the group maximum disagrees with this
/// rank's proposal.
pub fn epoch_consensus(
    comm: &Communicator,
    proposed_epoch: u64,
    resume_step: u64,
) -> Result<Consensus, ConsensusError> {
    // f32 holds these counters exactly below 2^24 — vastly beyond any
    // simulated run's epochs or steps.
    let proposal = Tensor::from_vec(vec![2], vec![proposed_epoch as f32, resume_step as f32])
        .expect("2-element proposal");
    let agreed = comm.try_all_reduce_max(&proposal).map_err(ConsensusError::Collective)?;
    let agreed = Consensus { epoch: agreed.data()[0] as u64, resume_step: agreed.data()[1] as u64 };
    let proposed = Consensus { epoch: proposed_epoch, resume_step };
    if agreed != proposed {
        // The max picked up a larger pair somewhere: fail loudly with both
        // views rather than resuming from the wrong checkpoint.
        return Err(ConsensusError::Diverged { rank: comm.rank(), proposed, agreed });
    }
    Ok(agreed)
}

/// Picks the degree the survivors re-form at: the largest `t′ ≤ survivors`
/// the model configuration divides by (heads and sequence length, the same
/// divisibility `Gpt::shard` demands). Returns `None` when no positive
/// degree fits — i.e. nobody survived.
pub fn survivor_degree(cfg: &TransformerConfig, survivors: usize) -> Option<usize> {
    (1..=survivors).rev().find(|&t| cfg.heads.is_multiple_of(t) && cfg.seq.is_multiple_of(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mt_collectives::World;

    fn cfg() -> TransformerConfig {
        TransformerConfig {
            hidden: 16,
            heads: 4,
            seq: 8,
            micro_batch: 2,
            layers: 2,
            vocab: 24,
            dropout_p: 0.0,
            causal: true,
        }
    }

    #[test]
    fn survivor_degree_picks_the_largest_dividing_width() {
        let c = cfg();
        assert_eq!(survivor_degree(&c, 4), Some(4));
        assert_eq!(survivor_degree(&c, 3), Some(2), "3 does not divide 4 heads");
        assert_eq!(survivor_degree(&c, 2), Some(2));
        assert_eq!(survivor_degree(&c, 1), Some(1));
        assert_eq!(survivor_degree(&c, 0), None);
    }

    #[test]
    fn unanimous_consensus_agrees_on_the_proposal() {
        let mut world = World::new(2);
        world.set_epoch(3);
        let out = world.run_fallible(|c| Ok(epoch_consensus(&c, 3, 12)));
        for r in out {
            let consensus = r.expect("round succeeds").expect("agrees");
            assert_eq!(consensus, Consensus { epoch: 3, resume_step: 12 });
        }
    }

    #[test]
    fn divergent_proposals_are_rejected() {
        let mut world = World::new(2);
        world.set_epoch(1);
        let out = world.run_fallible(|c| {
            // Rank 1 believes a later checkpoint committed.
            let step = if c.rank() == 0 { 8 } else { 12 };
            Ok(epoch_consensus(&c, 1, step))
        });
        // Rank 0's proposal is below the max: it must observe divergence.
        match &out[0] {
            Ok(Err(ConsensusError::Diverged { rank: 0, proposed, agreed })) => {
                assert_eq!(proposed.resume_step, 8);
                assert_eq!(agreed.resume_step, 12);
            }
            other => panic!("expected divergence on rank 0, got {other:?}"),
        }
    }
}
