//! Degree-changing checkpoint re-sharding: gather the `t` per-rank shards
//! of a [`TrainerCheckpoint`] into the full training state, then re-split
//! it for `t′` survivor ranks.
//!
//! Every move is a pure copy (concat along the Megatron shard axis, then
//! chunk along the same axis), so re-sharding is **bit-exact**: sharding
//! `t → t′ → t` round-trips to the original bytes, and a re-formed world
//! resumed from the re-shard is `to_bits`-identical to a run that never
//! changed degree. The Adam moments re-shard tensor-by-tensor under the
//! *same* layout as their parameters — a column-sharded weight has
//! column-sharded moments — which is what makes the optimizer trajectory
//! degree-invariant. ZeRO-1 optimizer shards re-shard by recomputing the
//! deterministic owner assignment at both degrees and moving each whole
//! tensor from its old owner to its new one.

use mt_model::optim::AdamState;
use mt_model::trainer::TrainerCheckpoint;
use mt_model::weights::LayerWeights;
use mt_model::zero::ZeroAdam;
use mt_tensor::Tensor;
use std::fmt;

/// Why a set of per-rank checkpoints could not be re-sharded.
#[derive(Debug, Clone, PartialEq)]
pub enum ReshardError {
    /// No source shards were supplied.
    Empty,
    /// The target degree was zero.
    ZeroTargetDegree,
    /// Two source shards disagree on replicated state (step counters,
    /// config, schedule position, dropout RNG) — they cannot come from one
    /// consistent training state.
    Inconsistent(String),
}

impl fmt::Display for ReshardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReshardError::Empty => write!(f, "no source shards to re-shard"),
            ReshardError::ZeroTargetDegree => write!(f, "target TP degree must be at least 1"),
            ReshardError::Inconsistent(msg) => {
                write!(f, "source shards are inconsistent: {msg}")
            }
        }
    }
}

impl std::error::Error for ReshardError {}

/// Reassembles the 12 per-layer tensors of one moment vector into a
/// [`LayerWeights`] view so the weight-level `unshard`/`shard` machinery
/// applies to Adam moments verbatim. The moments of a parameter have the
/// parameter's shape, so the Megatron layout rules transfer one-to-one.
fn layer_view(tensors: &[&Tensor]) -> LayerWeights {
    assert_eq!(tensors.len(), 12, "a layer has 12 parameter tensors");
    LayerWeights {
        ln1_gamma: tensors[0].clone(),
        ln1_beta: tensors[1].clone(),
        w_qkv: tensors[2].clone(),
        b_qkv: tensors[3].clone(),
        w_o: tensors[4].clone(),
        b_o: tensors[5].clone(),
        ln2_gamma: tensors[6].clone(),
        ln2_beta: tensors[7].clone(),
        w1: tensors[8].clone(),
        b1: tensors[9].clone(),
        w2: tensors[10].clone(),
        b2: tensors[11].clone(),
    }
}

/// Re-shards one moment vector (`m` or `v`, in `param_tensors_mut` order:
/// 4 replicated model-level tensors, then 12 per layer) from `t` source
/// ranks to `t_new` target ranks.
fn reshard_moments(per_rank: &[&Vec<Tensor>], layers: usize, t_new: usize) -> Vec<Vec<Tensor>> {
    let expected = 4 + 12 * layers;
    for (rank, m) in per_rank.iter().enumerate() {
        assert_eq!(m.len(), expected, "rank {rank} moment count");
    }
    // Replicated model-level moments: embedding table, positions, final LN
    // gamma/beta. Identical across TP ranks (their gradients are already
    // reduced), so rank 0's copy serves every target rank.
    let global: Vec<Tensor> = per_rank[0][..4].to_vec();
    // Per-layer moments re-shard exactly as the layer weights do.
    let mut per_layer_shards: Vec<Vec<LayerWeights>> = Vec::with_capacity(layers);
    for layer in 0..layers {
        let base = 4 + 12 * layer;
        let parts: Vec<LayerWeights> = per_rank
            .iter()
            .map(|m| layer_view(&m[base..base + 12].iter().collect::<Vec<_>>()))
            .collect();
        let full = LayerWeights::unshard(&parts);
        per_layer_shards.push((0..t_new).map(|r| full.shard(t_new, r)).collect());
    }
    (0..t_new)
        .map(|r| {
            let mut out = global.clone();
            for shards in &per_layer_shards {
                out.extend(shards[r].tensors().into_iter().cloned());
            }
            out
        })
        .collect()
}

/// Re-shards the `t` per-rank checkpoints of one training state to `t_new`
/// per-rank checkpoints, covering weights, Adam moments, and every
/// replicated field. All floats move by copy, never by arithmetic, so the
/// result is bit-exact (see the module docs).
///
/// # Errors
///
/// Fails if `ckpts` is empty, `t_new == 0`, or the shards disagree on any
/// replicated state.
///
/// # Panics
///
/// Panics if the model configuration does not divide by `t_new` (the same
/// divisibility `Gpt::shard` demands).
pub fn reshard_checkpoints(
    ckpts: &[TrainerCheckpoint],
    t_new: usize,
) -> Result<Vec<TrainerCheckpoint>, ReshardError> {
    let first = ckpts.first().ok_or(ReshardError::Empty)?;
    if t_new == 0 {
        return Err(ReshardError::ZeroTargetDegree);
    }
    for (rank, c) in ckpts.iter().enumerate() {
        let check = |ok: bool, what: &str| {
            if ok {
                Ok(())
            } else {
                Err(ReshardError::Inconsistent(format!("rank {rank} differs in {what}")))
            }
        };
        check(c.version == first.version, "checkpoint version")?;
        check(c.step == first.step, "trainer step")?;
        check(c.opt.step == first.opt.step, "optimizer step")?;
        check(c.cfg == first.cfg, "trainer config")?;
        check(c.model.cfg == first.model.cfg, "model config")?;
        check(c.model.policies == first.model.policies, "recompute policies")?;
        check(c.model.dropout_rng == first.model.dropout_rng, "dropout RNG")?;
        check(c.model.layer_weights.len() == first.model.layer_weights.len(), "layer count")?;
        check(c.opt.m.len() == first.opt.m.len(), "moment count")?;
    }
    let cfg = first.model.cfg;
    cfg.validate(t_new);
    let layers = first.model.layer_weights.len();

    // Weights: gather each layer's shards, re-split at the new degree.
    let mut layer_shards: Vec<Vec<LayerWeights>> = Vec::with_capacity(layers);
    for layer in 0..layers {
        let parts: Vec<LayerWeights> =
            ckpts.iter().map(|c| c.model.layer_weights[layer].clone()).collect();
        let full = LayerWeights::unshard(&parts);
        layer_shards.push((0..t_new).map(|r| full.shard(t_new, r)).collect());
    }

    // Adam moments mirror the parameter layout; an optimizer that has not
    // stepped yet has no moments to move.
    let (new_m, new_v) = if first.opt.m.is_empty() {
        (vec![Vec::new(); t_new], vec![Vec::new(); t_new])
    } else {
        let ms: Vec<&Vec<Tensor>> = ckpts.iter().map(|c| &c.opt.m).collect();
        let vs: Vec<&Vec<Tensor>> = ckpts.iter().map(|c| &c.opt.v).collect();
        (reshard_moments(&ms, layers, t_new), reshard_moments(&vs, layers, t_new))
    };

    Ok((0..t_new)
        .zip(new_m)
        .zip(new_v)
        .map(|((rank, m), v)| {
            let mut model = first.model.clone();
            model.layer_weights =
                (0..layers).map(|layer| layer_shards[layer][rank].clone()).collect();
            TrainerCheckpoint {
                version: first.version,
                cfg: first.cfg,
                model,
                opt: AdamState { step: first.opt.step, m, v },
                step: first.step,
            }
        })
        .collect())
}

/// Re-shards ZeRO-1 optimizer-state shards from `dp_old = states.len()`
/// replicas to `dp_new`. Ownership at both degrees is recomputed with
/// [`ZeroAdam::assign_owners`] — the same deterministic greedy assignment
/// the optimizer itself uses — so each tensor's moments move as a whole
/// from old owner to new owner, bit-exactly.
///
/// # Errors
///
/// Fails if `states` is empty, `dp_new == 0`, the step counters disagree,
/// or a shard's moment count does not match its owned-tensor count.
pub fn reshard_zero_states(
    states: &[AdamState],
    param_elements: &[usize],
    dp_new: usize,
) -> Result<Vec<AdamState>, ReshardError> {
    let first = states.first().ok_or(ReshardError::Empty)?;
    if dp_new == 0 {
        return Err(ReshardError::ZeroTargetDegree);
    }
    let dp_old = states.len();
    let owners_old = ZeroAdam::assign_owners(param_elements, dp_old);
    let owners_new = ZeroAdam::assign_owners(param_elements, dp_new);
    for (rank, s) in states.iter().enumerate() {
        if s.step != first.step {
            return Err(ReshardError::Inconsistent(format!(
                "rank {rank} at optimizer step {} but rank 0 at {}",
                s.step, first.step
            )));
        }
        let owned = owners_old.iter().filter(|&&o| o == rank).count();
        let expected = if s.m.is_empty() { 0 } else { owned };
        if s.m.len() != expected || s.v.len() != expected {
            return Err(ReshardError::Inconsistent(format!(
                "rank {rank} holds {}m/{}v moments but owns {owned} tensors",
                s.m.len(),
                s.v.len()
            )));
        }
    }
    if first.m.is_empty() {
        return Ok(vec![AdamState { step: first.step, m: Vec::new(), v: Vec::new() }; dp_new]);
    }
    // Scatter: tensor index -> (m, v), read from the old owner's shard at
    // the tensor's position among that owner's ascending owned indices.
    let mut cursor = vec![0usize; dp_old];
    let full: Vec<(&Tensor, &Tensor)> = owners_old
        .iter()
        .map(|&owner| {
            let at = cursor[owner];
            cursor[owner] += 1;
            (&states[owner].m[at], &states[owner].v[at])
        })
        .collect();
    // Gather: each new rank takes its owned tensors in ascending index
    // order — the order a fresh `ZeroAdam` at `dp_new` steps them in.
    Ok((0..dp_new)
        .map(|rank| {
            let mut m = Vec::new();
            let mut v = Vec::new();
            for (i, &owner) in owners_new.iter().enumerate() {
                if owner == rank {
                    m.push(full[i].0.clone());
                    v.push(full[i].1.clone());
                }
            }
            AdamState { step: first.step, m, v }
        })
        .collect())
}
