//! Mean-time-to-recovery accounting for one elastic re-formation.
//!
//! The four phases tile the interval from the moment a segment attempt
//! fails to the moment the lost work has been re-executed:
//!
//! * **detect** — from segment launch to every rank's failure surfacing
//!   (rendezvous deadline + `RankDead` propagation; includes the attempt's
//!   wasted compute, which is genuinely part of the time the fault cost).
//! * **consensus** — the survivors' deterministic epoch-consensus round on
//!   the re-formed world.
//! * **reshard** — gathering `t` checkpoint shards and re-splitting them
//!   for `t′` ranks.
//! * **replay** — re-running the failed segment from the restored
//!   checkpoint at the new degree.
//!
//! These are *observability* clocks: nothing in the recovery control flow
//! branches on them, so determinism of the recovered trajectory is
//! untouched (the same argument the collectives' rendezvous deadline
//! makes).

use std::time::{Duration, Instant};

/// A single funnel for wall-clock reads in this crate, so the
/// `wall-clock` lint rule has exactly one sanctioned call site to allow.
pub(crate) fn clock() -> Instant {
    Instant::now()
}

/// Wall-clock breakdown of one recovery, by phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MttrBreakdown {
    /// Segment launch → all ranks' failures surfaced.
    pub detect: Duration,
    /// Epoch-consensus barrier on the re-formed world.
    pub consensus: Duration,
    /// Checkpoint gather + re-split to the new degree.
    pub reshard: Duration,
    /// Re-execution of the failed segment from the restored checkpoint.
    pub replay: Duration,
}

impl MttrBreakdown {
    /// Total time to recovery: the sum of the four phases.
    pub fn total(&self) -> Duration {
        self.detect + self.consensus + self.reshard + self.replay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_the_phases() {
        let b = MttrBreakdown {
            detect: Duration::from_millis(5),
            consensus: Duration::from_millis(1),
            reshard: Duration::from_millis(2),
            replay: Duration::from_millis(8),
        };
        assert_eq!(b.total(), Duration::from_millis(16));
    }
}
