//! The chaos soak harness: hammer [`train_elastic`] with randomized fault
//! schedules across miniatures of the paper's Table 3 model zoo, under a
//! hard wall-clock budget, and check the headline guarantee on every run —
//! an elastic-recovered run's losses and final unsharded weights are
//! `to_bits`-identical to a fault-free run that takes the *same planned
//! resizes* at the same steps. The control shares the recovered run's
//! degree schedule because different tensor-parallel degrees reduce in
//! different floating-point orders (the repo's cross-degree guarantee is
//! tolerance-based, see `parallel_equivalence.rs`); what the soak proves
//! bit-for-bit is that detection, consensus, re-sharding, and replay add
//! **zero** numerical perturbation on top of the degree changes
//! themselves.
//!
//! The Table 3 shapes themselves are 22B+ parameters and cannot execute in
//! a test, so each zoo row is scaled to a *miniature* that preserves the
//! properties recovery cares about: heads/sequence divisibility by every
//! degree the world can shrink through, nonzero dropout (so the RNG-stream
//! replay is exercised), and the row's microbatch clamped to test size.

use crate::driver::{train_elastic, ElasticConfig, ElasticReport, PlannedResize};
use crate::mttr::clock;
use crate::reform::survivor_degree;
use mt_core::{ModelZoo, PaperModel};
use mt_fault::FaultPlan;
use mt_memory::Recompute;
use mt_model::gpt::Gpt;
use mt_model::trainer::TrainerConfig;
use mt_model::weights::LayerWeights;
use mt_model::TransformerConfig;
use mt_tensor::rng::SplitMix64;
use std::sync::Arc;
use std::time::Duration;

/// Scales a Table 3 row down to an executable miniature. The miniature
/// keeps what matters to elastic recovery — divisibility of heads and
/// sequence length by every candidate survivor degree, the row's
/// microbatch (clamped), live dropout — and shrinks everything else.
pub fn miniature(model: &PaperModel) -> TransformerConfig {
    // The 128+-head rows miniaturize to 8 heads, the others to 4, so the
    // zoo still spans two distinct shrink lattices (8→4→2→1 vs 4→2→1).
    let heads = if model.shape.heads >= 128 { 8 } else { 4 };
    TransformerConfig {
        hidden: heads * 4,
        heads,
        seq: 8,
        micro_batch: model.batch.micro.clamp(1, 2) as usize,
        layers: 2,
        vocab: 24,
        dropout_p: 0.1,
        causal: true,
    }
}

/// Knobs for [`soak`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakConfig {
    /// Starting tensor-parallel degree of every run.
    pub tp: usize,
    /// Randomized fault schedules tried per zoo model.
    pub schedules_per_model: u64,
    /// Base seed; schedule `i` of model `m` uses `seed + 1000·m + i`.
    pub seed: u64,
    /// Faults per randomized schedule.
    pub faults_per_schedule: usize,
    /// Collective-sequence range the faults land in.
    pub max_seq: u64,
    /// Training steps per run.
    pub total_steps: u64,
    /// Steps between checkpoints.
    pub checkpoint_every: u64,
    /// Hard wall-clock budget: once spent, remaining runs are skipped
    /// (and counted), never started.
    pub budget: Duration,
}

impl SoakConfig {
    /// A bounded smoke configuration: tp=4, 2 schedules per model, 2
    /// faults each, 6 steps, 60 s budget.
    pub fn smoke(seed: u64) -> Self {
        SoakConfig {
            tp: 4,
            schedules_per_model: 2,
            seed,
            faults_per_schedule: 2,
            max_seq: 48,
            total_steps: 6,
            checkpoint_every: 2,
            budget: Duration::from_secs(60),
        }
    }
}

/// One soak run's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakRun {
    /// Zoo row the miniature came from.
    pub model: &'static str,
    /// Seed of the randomized fault schedule.
    pub seed: u64,
    /// World re-formations the run went through.
    pub reforms: usize,
    /// Same-degree transient replays.
    pub retries: u32,
    /// Degree the run finished at.
    pub final_degree: usize,
    /// Losses and final unsharded weights matched the fault-free
    /// planned-resize control bit for bit.
    pub bit_identical: bool,
    /// `"ok"`, or the error the run died with.
    pub outcome: String,
}

/// What a soak session did.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Completed runs, in order.
    pub runs: Vec<SoakRun>,
    /// Runs skipped because the wall-clock budget ran out.
    pub skipped: usize,
}

impl SoakReport {
    /// True when every completed run recovered and was bit-identical to
    /// its fault-free control.
    pub fn all_clean(&self) -> bool {
        self.runs.iter().all(|r| r.outcome == "ok" && r.bit_identical)
    }

    /// Total world re-formations across all runs.
    pub fn total_reforms(&self) -> usize {
        self.runs.iter().map(|r| r.reforms).sum()
    }
}

/// Final unsharded weights of a per-rank model set, as bit patterns: each
/// layer's shards are gathered with [`LayerWeights::unshard`], then the
/// replicated embedding and final LayerNorm come from rank 0. Degree-
/// independent, so model sets at any degree compare directly.
pub fn unsharded_bits(models: &[Gpt]) -> Vec<u32> {
    assert!(!models.is_empty(), "need at least one model shard");
    let ckpts: Vec<_> = models.iter().map(Gpt::to_checkpoint).collect();
    let mut out: Vec<u32> = Vec::new();
    for layer in 0..ckpts[0].layer_weights.len() {
        let parts: Vec<LayerWeights> =
            ckpts.iter().map(|c| c.layer_weights[layer].clone()).collect();
        let full = if parts.len() == 1 { parts[0].clone() } else { LayerWeights::unshard(&parts) };
        for t in full.tensors() {
            out.extend(t.data().iter().map(|x| x.to_bits()));
        }
    }
    out.extend(ckpts[0].embedding.table.data().iter().map(|x| x.to_bits()));
    out.extend(ckpts[0].embedding.positions.data().iter().map(|x| x.to_bits()));
    out.extend(ckpts[0].final_ln_gamma.data().iter().map(|x| x.to_bits()));
    out.extend(ckpts[0].final_ln_beta.data().iter().map(|x| x.to_bits()));
    out
}

/// A deterministic batch for `step`: pure function of the config and step
/// number, as the elastic driver requires.
pub fn soak_batch(c: &TransformerConfig, step: u64) -> (Vec<usize>, Vec<usize>) {
    let mut rng = SplitMix64::new(0x50AC ^ step);
    let n = c.tokens();
    (
        (0..n).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
        (0..n).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
    )
}

/// Runs the chaos soak: for every Table 3 miniature,
/// `schedules_per_model` runs under [`FaultPlan::random`] schedules, each
/// checked bit-for-bit against a fault-free control that takes the same
/// degree schedule as [`PlannedResize`]s. The wall-clock budget is
/// enforced *between* runs — a run that has started finishes (each run is
/// itself bounded by the collective timeout and failure budget), later
/// runs are skipped and counted.
///
/// # Panics
///
/// Panics if the soak config's degree does not divide the miniatures, or
/// if a fault-free control run fails.
pub fn soak(sc: &SoakConfig) -> SoakReport {
    let start = clock();
    let mut report = SoakReport { runs: Vec::new(), skipped: 0 };
    for (mi, model) in ModelZoo::all().iter().enumerate() {
        let c = miniature(model);
        assert_eq!(
            survivor_degree(&c, sc.tp),
            Some(sc.tp),
            "miniature of {} must divide by tp={}",
            model.name,
            sc.tp
        );
        let init = Gpt::init(c, Recompute::Selective, sc.seed ^ mi as u64);
        let ec = ElasticConfig {
            total_steps: sc.total_steps,
            checkpoint_every: sc.checkpoint_every,
            max_failures: sc.faults_per_schedule as u32 + 2,
            collective_timeout: Duration::from_secs(10),
            planned: Vec::new(),
        };
        let data = |step: u64| soak_batch(&c, step);
        for i in 0..sc.schedules_per_model {
            if start.elapsed() > sc.budget {
                report.skipped += 1;
                continue;
            }
            let seed = sc.seed + 1000 * mi as u64 + i;
            let plan = FaultPlan::random(seed, sc.tp, sc.max_seq, sc.faults_per_schedule);
            let outcome = train_elastic(
                &init,
                sc.tp,
                Recompute::Selective,
                TrainerConfig::default(),
                &ec,
                Arc::new(plan),
                data,
            );
            report.runs.push(match outcome {
                Ok((models, rep)) => {
                    // Control: a fault-free run that takes the same degree
                    // schedule as planned resizes. Identical bits mean the
                    // recovery machinery itself perturbed nothing.
                    let control_ec = ElasticConfig {
                        planned: rep
                            .reforms
                            .iter()
                            .map(|r| PlannedResize { at_step: r.resume_step, degree: r.to_degree })
                            .collect(),
                        ..ec.clone()
                    };
                    let (control, control_report) = train_elastic(
                        &init,
                        sc.tp,
                        Recompute::Selective,
                        TrainerConfig::default(),
                        &control_ec,
                        Arc::new(FaultPlan::none()),
                        data,
                    )
                    .expect("fault-free planned-resize control run succeeds");
                    SoakRun {
                        model: model.name,
                        seed,
                        reforms: rep.reforms.len(),
                        retries: rep.retries,
                        final_degree: rep.final_degree,
                        bit_identical: bit_identical(
                            &control_report,
                            &unsharded_bits(&control),
                            &rep,
                            &models,
                        ),
                        outcome: "ok".to_string(),
                    }
                }
                Err(e) => SoakRun {
                    model: model.name,
                    seed,
                    reforms: 0,
                    retries: 0,
                    final_degree: 0,
                    bit_identical: false,
                    outcome: e.to_string(),
                },
            });
        }
    }
    report
}

/// The headline check: loss trajectory and final unsharded weights of an
/// elastic run match the fault-free control bit for bit.
fn bit_identical(
    control_report: &ElasticReport,
    control_bits: &[u32],
    rep: &ElasticReport,
    models: &[Gpt],
) -> bool {
    control_report.stats.len() == rep.stats.len()
        && control_report
            .stats
            .iter()
            .zip(&rep.stats)
            .all(|(a, b)| a.loss.to_bits() == b.loss.to_bits())
        && unsharded_bits(models) == *control_bits
}
