//! The elastic training driver: run checkpoint-delimited segments like
//! `mt_model::recovery`, but when a rank *dies* (rather than failing
//! transiently), re-form the world at a smaller tensor-parallel degree
//! with the survivors instead of retrying at the original width.
//!
//! The recovery sequence after a death is:
//!
//! 1. **detect** — the failed attempt's [`World::run_fallible`] returns;
//!    dead ranks are read off the [`CollectiveError::RankDead`] errors.
//! 2. **consensus** — a fresh world at `epoch + 1` and the survivor
//!    degree runs [`epoch_consensus`] as its first collective, agreeing
//!    on the resume step and fencing out stale-epoch stragglers.
//! 3. **reshard** — [`reshard_checkpoints`] gathers the `t` checkpoint
//!    shards and re-splits them for `t′` ranks, bit-exactly.
//! 4. **replay** — the failed segment re-runs at the new degree from the
//!    re-sharded checkpoints.
//!
//! Transient failures ([`CollectiveError::InjectedTransient`], timeouts
//! with no death behind them) replay at the *same* degree and epoch, like
//! the retry driver. The fault plan is installed on training worlds only;
//! the consensus round is recovery control plane and runs unfaulted.

use crate::mttr::{clock, MttrBreakdown};
use crate::reform::{epoch_consensus, survivor_degree, ConsensusError};
use crate::reshard::{reshard_checkpoints, ReshardError};
use mt_collectives::{CollectiveError, World, DEFAULT_COLLECTIVE_TIMEOUT};
use mt_fault::FaultPlan;
use mt_memory::Recompute;
use mt_model::gpt::Gpt;
use mt_model::recovery::gate_step;
use mt_model::trainer::{StepStats, Trainer, TrainerCheckpoint, TrainerConfig};
use mt_model::ExecMode;
use mt_trace::ArgValue;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A voluntary degree change: when training reaches committed step
/// `at_step`, the world re-forms at `degree` through the *same*
/// consensus + re-shard path a rank death triggers — just without a
/// death. A fault-free run with the planned resizes matching a recovered
/// run's reforms is the bit-identity control for that recovery: if the
/// recovery machinery adds any numerical perturbation at all, the two
/// runs diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedResize {
    /// Committed step (a segment boundary) the resize happens at.
    pub at_step: u64,
    /// Tensor-parallel degree to re-form at (may grow or shrink).
    pub degree: usize,
}

/// Knobs for [`train_elastic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElasticConfig {
    /// Total training steps to complete.
    pub total_steps: u64,
    /// Steps between checkpoints (segment length).
    pub checkpoint_every: u64,
    /// Failed segment attempts tolerated — reforms and same-degree
    /// retries both draw from this budget — before giving up.
    pub max_failures: u32,
    /// Rendezvous deadline installed on each attempt's world. This is
    /// also the detection latency bound: a peer of a dead rank learns of
    /// the death no later than its next rendezvous deadline.
    pub collective_timeout: Duration,
    /// Voluntary degree changes, sorted by step; entries sharing a step
    /// apply in order. Each `at_step` must be a multiple of
    /// `checkpoint_every` (resizes happen at checkpoint boundaries, where
    /// a consistent state exists to re-shard).
    pub planned: Vec<PlannedResize>,
}

impl ElasticConfig {
    /// A config for `total_steps` with checkpoints every 4 steps, 4
    /// tolerated failures, the default collective timeout, and no planned
    /// resizes.
    pub fn new(total_steps: u64) -> Self {
        ElasticConfig {
            total_steps,
            checkpoint_every: 4,
            max_failures: 4,
            collective_timeout: DEFAULT_COLLECTIVE_TIMEOUT,
            planned: Vec::new(),
        }
    }
}

/// One world re-formation: who died, what the world shrank to, and what
/// the recovery cost, phase by phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReformRecord {
    /// Epoch of the *new* formation (old epoch + 1).
    pub epoch: u64,
    /// Tensor-parallel degree before the death.
    pub from_degree: usize,
    /// Survivor degree the world re-formed at.
    pub to_degree: usize,
    /// Ranks (in the old formation's numbering) that died. Empty for a
    /// [`PlannedResize`] — the reform was voluntary.
    pub dead_ranks: Vec<usize>,
    /// Committed step the survivors resumed from.
    pub resume_step: u64,
    /// Wall-clock cost of this recovery. `replay` is filled in when the
    /// re-formed world commits its first segment; if further faults land
    /// during replay, it covers the attempt that finally committed.
    pub mttr: MttrBreakdown,
}

/// What happened across an elastic run.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticReport {
    /// Per-step diagnostics from rank 0 of whichever formation committed
    /// the step, for all `total_steps` steps.
    pub stats: Vec<StepStats>,
    /// Every world re-formation, in order.
    pub reforms: Vec<ReformRecord>,
    /// Same-degree replays of transient failures (no death involved).
    pub retries: u32,
    /// Human-readable description of each recovered failure.
    pub failures: Vec<String>,
    /// Tensor-parallel degree the run finished at.
    pub final_degree: usize,
    /// Epoch the run finished at (`reforms.len()` as u64).
    pub final_epoch: u64,
}

/// Terminal failure of [`train_elastic`].
#[derive(Debug, Clone, PartialEq)]
pub enum ElasticError {
    /// The failure budget ran out.
    Exhausted {
        /// Descriptions of every failed attempt, in order.
        failures: Vec<String>,
    },
    /// Every rank died — there is no degree left to re-form at.
    NoSurvivors {
        /// Descriptions of every failed attempt, in order.
        failures: Vec<String>,
    },
    /// The survivors could not agree on where to resume.
    Consensus(String),
    /// The checkpoints could not be re-sharded to the survivor degree.
    Reshard(ReshardError),
}

impl fmt::Display for ElasticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElasticError::Exhausted { failures } => {
                write!(f, "failure budget exhausted after {} failures", failures.len())?;
                match failures.last() {
                    Some(last) => write!(f, ": {last}"),
                    None => Ok(()),
                }
            }
            ElasticError::NoSurvivors { failures } => {
                write!(f, "no survivors to re-form with after {} failures", failures.len())
            }
            ElasticError::Consensus(msg) => write!(f, "epoch consensus failed: {msg}"),
            ElasticError::Reshard(e) => write!(f, "checkpoint re-shard failed: {e}"),
        }
    }
}

impl std::error::Error for ElasticError {}

/// Trains `init` for `ec.total_steps` steps starting at `tp` tensor-
/// parallel ranks, shrinking the world to the survivors whenever a rank
/// dies. Returns the per-rank trained shards at the **final** degree
/// (the full model when that degree is 1) and a report of every reform.
///
/// `data(step)` must be a pure function of the step number so a replayed
/// segment — possibly at a different degree — sees identical batches.
/// Because checkpoints capture training state bit-exactly, re-sharding
/// is copy-only, and the math is degree-invariant, the recovered run's
/// losses and final unsharded weights are `to_bits`-identical to a
/// fault-free run of the same total steps (see `tests/elastic.rs`).
///
/// # Errors
///
/// [`ElasticError::Exhausted`] once `ec.max_failures` failed attempts
/// are spent, [`ElasticError::NoSurvivors`] when every rank has died,
/// and [`ElasticError::Consensus`] / [`ElasticError::Reshard`] when a
/// re-formation itself fails.
///
/// # Panics
///
/// Panics if `tp == 0`, `ec.checkpoint_every == 0`, or the model/config
/// are invalid for `tp`-way sharding.
pub fn train_elastic<F>(
    init: &Gpt,
    tp: usize,
    policy: Recompute,
    cfg: TrainerConfig,
    ec: &ElasticConfig,
    plan: Arc<FaultPlan>,
    data: F,
) -> Result<(Vec<Gpt>, ElasticReport), ElasticError>
where
    F: Fn(u64) -> (Vec<usize>, Vec<usize>) + Sync,
{
    assert!(tp > 0, "tensor-parallel degree must be at least 1");
    assert!(ec.checkpoint_every > 0, "checkpoint_every must be at least 1");
    let model_cfg = init.config();
    for (i, p) in ec.planned.iter().enumerate() {
        assert!(
            p.at_step % ec.checkpoint_every == 0 && p.at_step < ec.total_steps,
            "planned resize at step {} is not a reachable checkpoint boundary",
            p.at_step
        );
        assert!(
            i == 0 || ec.planned[i - 1].at_step <= p.at_step,
            "planned resizes must be sorted by step"
        );
        model_cfg.validate(p.degree);
    }
    let mut degree = tp;
    let mut epoch = 0u64;
    let mut ckpts: Vec<TrainerCheckpoint> = (0..tp)
        .map(|rank| {
            let model = if tp == 1 { init.clone() } else { init.shard(tp, rank, policy) };
            Trainer::new(model, cfg).save_checkpoint()
        })
        .collect();
    let mut report = ElasticReport {
        stats: Vec::new(),
        reforms: Vec::new(),
        retries: 0,
        failures: Vec::new(),
        final_degree: tp,
        final_epoch: 0,
    };
    // Index into `report.reforms` whose replay clock is still open.
    let mut pending_replay: Option<usize> = None;
    let mut next_planned = 0usize;
    let mut done = 0u64;
    while done < ec.total_steps {
        // Voluntary resizes scheduled at this boundary go through the
        // exact reform path a death takes (consensus at epoch+1, then
        // re-shard) — there is just nothing to detect or replay.
        while next_planned < ec.planned.len() && ec.planned[next_planned].at_step == done {
            let target = ec.planned[next_planned].degree;
            next_planned += 1;
            if target == degree {
                continue;
            }
            let (new_ckpts, record) = perform_reform(
                &ckpts,
                Vec::new(),
                degree,
                target,
                done,
                Duration::ZERO,
                epoch,
                ec,
            )?;
            ckpts = new_ckpts;
            report.reforms.push(record);
            degree = target;
            epoch += 1;
        }
        let seg_end = (done + ec.checkpoint_every).min(ec.total_steps);
        let attempt_start = clock();
        let mut world = World::new(degree);
        world.set_epoch(epoch);
        world.set_collective_timeout(ec.collective_timeout);
        world.set_fault_plan(Arc::clone(&plan));
        let ckpts_ref = &ckpts;
        let plan_ref = &plan;
        let data_ref = &data;
        let t = degree;
        let results = world.run_fallible(|comm| {
            let rank = comm.rank();
            let mut trainer = Trainer::resume_from(ckpts_ref[rank].clone())
                .expect("in-memory checkpoint is valid");
            let mut seg_stats = Vec::with_capacity((seg_end - done) as usize);
            for step in done..seg_end {
                gate_step(plan_ref, rank, step)?;
                let (tokens, targets) = data_ref(step);
                let stats = if t == 1 {
                    trainer.step(&tokens, &targets, ExecMode::Serial)
                } else {
                    trainer.step(&tokens, &targets, ExecMode::TensorParallel(&comm))
                };
                seg_stats.push(stats);
            }
            Ok((trainer.save_checkpoint(), seg_stats))
        });

        if results.iter().all(Result::is_ok) {
            for (rank, r) in results.into_iter().enumerate() {
                let (ckpt, seg_stats) = r.expect("checked ok");
                if rank == 0 {
                    report.stats.extend(seg_stats);
                }
                ckpts[rank] = ckpt;
            }
            done = seg_end;
            if let Some(idx) = pending_replay.take() {
                report.reforms[idx].mttr.replay = attempt_start.elapsed();
            }
            continue;
        }

        // The attempt failed: the interval from launch to here is the
        // detection phase (it includes the attempt's wasted compute,
        // which is genuinely part of what the fault cost).
        let detect = attempt_start.elapsed();
        let errs: Vec<String> = results
            .iter()
            .enumerate()
            .filter_map(|(rank, r)| r.as_ref().err().map(|e| format!("rank {rank}: {e}")))
            .collect();
        report.failures.push(format!("segment [{done}, {seg_end}): {}", errs.join("; ")));
        if report.failures.len() as u32 > ec.max_failures {
            return Err(ElasticError::Exhausted { failures: report.failures });
        }

        // A rank is dead iff its *own* slot names itself dead (its thread
        // panicked and will never rejoin). Peers blame the dead rank with
        // `RankDead` too, but a peer that merely *observed* a death — or
        // failed transiently, which also makes peers see `RankDead` since
        // it bails out of the rendezvous — is alive and re-formable.
        let dead: Vec<usize> = results
            .iter()
            .enumerate()
            .filter_map(|(rank, r)| match r {
                Err(CollectiveError::RankDead { dead_rank, .. }) if *dead_rank == rank => {
                    Some(rank)
                }
                _ => None,
            })
            .collect();
        if dead.is_empty() {
            // Transient failure: replay the segment at the same degree
            // and epoch, exactly like the retry driver would.
            report.retries += 1;
            continue;
        }

        let tracer = mt_trace::current();
        for &d in &dead {
            tracer.instant_args("rank_dead", || {
                vec![
                    ("rank", ArgValue::U64(d as u64)),
                    ("epoch", ArgValue::U64(epoch)),
                    ("step", ArgValue::U64(done)),
                ]
            });
        }
        let survivors = degree - dead.len();
        let Some(t_new) = survivor_degree(&model_cfg, survivors) else {
            return Err(ElasticError::NoSurvivors { failures: report.failures });
        };
        let (new_ckpts, record) =
            perform_reform(&ckpts, dead, degree, t_new, done, detect, epoch, ec)?;
        ckpts = new_ckpts;
        report.reforms.push(record);
        pending_replay = Some(report.reforms.len() - 1);
        degree = t_new;
        epoch += 1;
    }
    report.final_degree = degree;
    report.final_epoch = epoch;
    let models = ckpts
        .into_iter()
        .map(|c| Trainer::resume_from(c).expect("in-memory checkpoint is valid").into_model())
        .collect();
    Ok((models, report))
}

/// The reform sequence shared by death recovery and planned resizes:
/// epoch-consensus barrier on a fresh world at `old_epoch + 1`, then
/// bit-exact checkpoint re-sharding to `to_degree`. The consensus world
/// carries no fault plan — it is recovery control plane. Returns the
/// re-sharded checkpoints and the reform's record (replay clock zeroed;
/// the caller fills it when the re-formed world commits).
#[allow(clippy::too_many_arguments)]
fn perform_reform(
    ckpts: &[TrainerCheckpoint],
    dead: Vec<usize>,
    from_degree: usize,
    to_degree: usize,
    resume_step: u64,
    detect: Duration,
    old_epoch: u64,
    ec: &ElasticConfig,
) -> Result<(Vec<TrainerCheckpoint>, ReformRecord), ElasticError> {
    let tracer = mt_trace::current();
    let epoch = old_epoch + 1;
    let reform_span = tracer.span_args("epoch_reform", || {
        vec![
            ("epoch", ArgValue::U64(epoch)),
            ("from_degree", ArgValue::U64(from_degree as u64)),
            ("to_degree", ArgValue::U64(to_degree as u64)),
            ("resume_step", ArgValue::U64(resume_step)),
        ]
    });

    // Consensus: the first collective of the new formation, at the bumped
    // epoch — it agrees on the resume point and fences out stragglers.
    let consensus_start = clock();
    let mut consensus_world = World::new(to_degree);
    consensus_world.set_epoch(epoch);
    consensus_world.set_collective_timeout(ec.collective_timeout);
    let votes =
        consensus_world.run_fallible(|comm| match epoch_consensus(&comm, epoch, resume_step) {
            Ok(c) => Ok(Ok(c)),
            Err(ConsensusError::Collective(e)) => Err(e),
            Err(diverged) => Ok(Err(diverged.to_string())),
        });
    for vote in votes {
        match vote {
            Ok(Ok(_)) => {}
            Ok(Err(msg)) => return Err(ElasticError::Consensus(msg)),
            Err(e) => return Err(ElasticError::Consensus(e.to_string())),
        }
    }
    let consensus = consensus_start.elapsed();

    // Re-shard the last committed checkpoints for the new formation.
    let reshard_start = clock();
    let reshard_span = tracer.span_args("reshard", || {
        vec![
            ("from_degree", ArgValue::U64(from_degree as u64)),
            ("to_degree", ArgValue::U64(to_degree as u64)),
        ]
    });
    let new_ckpts = reshard_checkpoints(ckpts, to_degree).map_err(ElasticError::Reshard)?;
    drop(reshard_span);
    let reshard = reshard_start.elapsed();
    drop(reform_span);

    let record = ReformRecord {
        epoch,
        from_degree,
        to_degree,
        dead_ranks: dead,
        resume_step,
        mttr: MttrBreakdown { detect, consensus, reshard, replay: Duration::ZERO },
    };
    Ok((new_ckpts, record))
}
