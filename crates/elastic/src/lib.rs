//! # mt-elastic — elastic in-job recovery
//!
//! When a rank dies mid-training, the job does not restart: the survivors
//! detect the death (rendezvous deadlines plus `RankDead` propagation),
//! agree on where to resume with a deterministic epoch-consensus barrier,
//! re-shard the last checkpoint from `t` ways to the survivor degree `t′`,
//! and keep training — with losses and final weights **bit-identical** to
//! a fault-free run that takes the same degree changes as voluntary
//! [`PlannedResize`]s. (Different tensor-parallel degrees reduce in
//! different floating-point orders, so runs at different degrees agree
//! only to the repo's standard tolerance; what recovery guarantees
//! bit-for-bit is that detection, consensus, re-sharding, and replay add
//! zero perturbation on top of the degree change itself.)
//!
//! The pieces:
//!
//! * [`reshard_checkpoints`] / [`reshard_zero_states`] — degree-changing,
//!   copy-only (hence bit-exact) re-sharding of trainer checkpoints and
//!   ZeRO-1 optimizer shards.
//! * [`epoch_consensus`] / [`survivor_degree`] — the re-formation
//!   protocol. Epoch numbers ride in every collective's
//!   [`CallTag`](mt_collectives::CallTag), so a straggler from the old
//!   formation is fenced out as an `SpmdMismatch` instead of deadlocking
//!   the new one; `mt-analyze` proves the re-formed schedule tag-for-tag
//!   identical to a fresh run at the same degree.
//! * [`train_elastic`] — the driver: checkpoint-delimited segments,
//!   transient failures replayed at the same degree, deaths recovered by
//!   shrinking the world, with a per-reform [`MttrBreakdown`]
//!   (detect / consensus / reshard / replay).
//! * [`soak`] — the chaos harness: randomized [`FaultPlan`]s over
//!   miniatures of the paper's Table 3 zoo under a hard wall-clock budget,
//!   every run checked bit-for-bit against a fault-free control.
//!
//! [`FaultPlan`]: mt_fault::FaultPlan

#![warn(missing_docs)]

mod driver;
mod mttr;
mod reform;
mod reshard;
mod soak;

pub use driver::{
    train_elastic, ElasticConfig, ElasticError, ElasticReport, PlannedResize, ReformRecord,
};
pub use mttr::MttrBreakdown;
pub use reform::{epoch_consensus, survivor_degree, Consensus, ConsensusError};
pub use reshard::{reshard_checkpoints, reshard_zero_states, ReshardError};
pub use soak::{miniature, soak, soak_batch, unsharded_bits, SoakConfig, SoakReport, SoakRun};
