//! Next-token dataset packing and microbatch assembly.

use mt_tensor::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// A token stream packed into overlapping next-token-prediction windows of
/// length `seq`: window `i` predicts `tokens[i+1 ..= i+seq]` from
/// `tokens[i .. i+seq]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedDataset {
    tokens: Vec<usize>,
    seq: usize,
}

impl PackedDataset {
    /// Packs a token stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream is shorter than `seq + 1` tokens or `seq == 0`.
    pub fn new(tokens: Vec<usize>, seq: usize) -> Self {
        assert!(seq > 0, "seq must be positive");
        assert!(
            tokens.len() > seq,
            "need at least seq+1 = {} tokens, got {}",
            seq + 1,
            tokens.len()
        );
        PackedDataset { tokens, seq }
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.tokens.len() - self.seq
    }

    /// Whether there are no windows (never true for a constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Window length.
    pub fn seq(&self) -> usize {
        self.seq
    }

    /// The `(inputs, targets)` pair of window `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn window(&self, index: usize) -> (Vec<usize>, Vec<usize>) {
        assert!(index < self.len(), "window {index} out of range");
        (
            self.tokens[index..index + self.seq].to_vec(),
            self.tokens[index + 1..index + self.seq + 1].to_vec(),
        )
    }

    /// Splits the token stream into train/validation datasets at a
    /// contiguous boundary (the last `valid_fraction` of tokens become the
    /// validation set), so no window spans both splits.
    ///
    /// # Panics
    ///
    /// Panics if either split would be shorter than `seq + 1` tokens.
    pub fn split(&self, valid_fraction: f64) -> (PackedDataset, PackedDataset) {
        assert!((0.0..1.0).contains(&valid_fraction), "fraction must be in [0, 1)");
        let cut = ((self.tokens.len() as f64) * (1.0 - valid_fraction)) as usize;
        (
            PackedDataset::new(self.tokens[..cut].to_vec(), self.seq),
            PackedDataset::new(self.tokens[cut..].to_vec(), self.seq),
        )
    }

    /// Assembles a microbatch of `b` windows into the model's s-major
    /// layout (`row = seq_index · b + batch_index`), the layout
    /// `mt_model::gpt::Gpt::loss_and_grads` expects.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `indices` is empty.
    pub fn microbatch(&self, indices: &[usize]) -> (Vec<usize>, Vec<usize>) {
        assert!(!indices.is_empty(), "empty microbatch");
        let b = indices.len();
        let mut tokens = vec![0usize; self.seq * b];
        let mut targets = vec![0usize; self.seq * b];
        for (bj, &w) in indices.iter().enumerate() {
            let (inp, tgt) = self.window(w);
            for si in 0..self.seq {
                tokens[si * b + bj] = inp[si];
                targets[si * b + bj] = tgt[si];
            }
        }
        (tokens, targets)
    }
}

/// Deterministic without-replacement sampler over dataset windows; reshuffles
/// each epoch.
#[derive(Debug, Clone)]
pub struct MicrobatchSampler {
    order: Vec<usize>,
    cursor: usize,
    batch: usize,
    rng: SplitMix64,
}

impl MicrobatchSampler {
    /// Creates a sampler drawing microbatches of `batch` windows.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or the dataset has fewer windows than `batch`.
    pub fn new(dataset: &PackedDataset, batch: usize, seed: u64) -> Self {
        assert!(batch > 0, "batch must be positive");
        assert!(dataset.len() >= batch, "dataset smaller than one microbatch");
        let mut s = MicrobatchSampler {
            order: (0..dataset.len()).collect(),
            cursor: 0,
            batch,
            rng: SplitMix64::new(seed),
        };
        s.shuffle();
        s
    }

    fn shuffle(&mut self) {
        // Fisher–Yates with the deterministic RNG.
        for i in (1..self.order.len()).rev() {
            let j = (self.rng.next_u64() % (i as u64 + 1)) as usize;
            self.order.swap(i, j);
        }
        self.cursor = 0;
    }

    /// The next microbatch's window indices; reshuffles at epoch end.
    pub fn next_indices(&mut self) -> Vec<usize> {
        if self.cursor + self.batch > self.order.len() {
            self.shuffle();
        }
        let out = self.order[self.cursor..self.cursor + self.batch].to_vec();
        self.cursor += self.batch;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> PackedDataset {
        PackedDataset::new((0..50).collect(), 8)
    }

    #[test]
    fn window_shapes_and_shift() {
        let ds = dataset();
        assert_eq!(ds.len(), 42);
        let (i, t) = ds.window(5);
        assert_eq!(i, (5..13).collect::<Vec<_>>());
        assert_eq!(t, (6..14).collect::<Vec<_>>());
    }

    #[test]
    fn microbatch_is_s_major() {
        let ds = dataset();
        let (tokens, targets) = ds.microbatch(&[0, 10]);
        let b = 2;
        // Row (si, bj): tokens[si*b + bj] == window_bj[si].
        for si in 0..8 {
            assert_eq!(tokens[si * b], si);
            assert_eq!(tokens[si * b + 1], 10 + si);
            assert_eq!(targets[si * b], si + 1);
        }
    }

    #[test]
    fn sampler_is_deterministic_and_covers_epoch() {
        let ds = dataset();
        let mut a = MicrobatchSampler::new(&ds, 6, 9);
        let mut b = MicrobatchSampler::new(&ds, 6, 9);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..7 {
            let ia = a.next_indices();
            let ib = b.next_indices();
            assert_eq!(ia, ib, "same seed, same order");
            seen.extend(ia);
        }
        assert_eq!(seen.len(), 42, "first epoch covers every window");
    }

    #[test]
    fn sampler_reshuffles_between_epochs() {
        let ds = dataset();
        let mut s = MicrobatchSampler::new(&ds, 42, 1);
        let first: Vec<usize> = s.next_indices();
        let second: Vec<usize> = s.next_indices();
        assert_ne!(first, second, "new epoch should have a new order");
    }

    #[test]
    fn split_is_disjoint_and_covers_the_stream() {
        let ds = dataset();
        let (train, valid) = ds.split(0.3);
        assert_eq!(train.seq(), 8);
        // Window counts reflect the contiguous cut.
        assert!(train.len() > valid.len());
        // Last train token precedes first valid token in the original stream.
        let (train_last, _) = train.window(train.len() - 1);
        let (valid_first, _) = valid.window(0);
        assert!(train_last.last().unwrap() < valid_first.first().unwrap());
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn split_rejects_tiny_validation_sets() {
        let _ = dataset().split(0.01);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn rejects_short_streams() {
        let _ = PackedDataset::new(vec![1, 2, 3], 8);
    }
}
