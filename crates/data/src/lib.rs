//! # mt-data
//!
//! The data substrate for the executing GPT: character/byte vocabularies,
//! next-token dataset packing, and deterministic microbatch sampling in the
//! model's s-major layout.
//!
//! The paper trains on web-scale corpora; this crate provides the smallest
//! faithful equivalent — enough for the examples to train a real language
//! model on embedded text and *generate* from it, demonstrating that the
//! parallel/recompute machinery trains something that actually learns.
//!
//! ## Example
//!
//! ```
//! use mt_data::{CharVocab, PackedDataset};
//!
//! let corpus = "the quick brown fox jumps over the lazy dog. ";
//! let vocab = CharVocab::from_corpus(corpus);
//! let tokens = vocab.encode(corpus);
//! assert_eq!(vocab.decode(&tokens), corpus);
//!
//! let ds = PackedDataset::new(tokens, /*seq*/ 8);
//! assert!(ds.len() > 0);
//! let (inputs, targets) = ds.window(0);
//! assert_eq!(inputs.len(), 8);
//! assert_eq!(&inputs[1..], &targets[..7]); // targets are inputs shifted by one
//! ```

#![warn(missing_docs)]

mod dataset;
mod vocab;

pub use dataset::{MicrobatchSampler, PackedDataset};
pub use vocab::{ByteVocab, CharVocab};
