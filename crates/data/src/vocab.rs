//! Character-level vocabulary.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A character-level vocabulary built from a corpus: each distinct `char`
/// maps to a dense id in `0..len()`, in sorted character order (so the
/// mapping is deterministic regardless of corpus order).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharVocab {
    chars: Vec<char>,
    ids: BTreeMap<char, usize>,
}

impl CharVocab {
    /// Builds the vocabulary of every distinct character in `corpus`.
    ///
    /// # Panics
    ///
    /// Panics if the corpus is empty.
    pub fn from_corpus(corpus: &str) -> Self {
        assert!(!corpus.is_empty(), "empty corpus");
        let mut set: Vec<char> = corpus.chars().collect();
        set.sort_unstable();
        set.dedup();
        let ids = set.iter().copied().enumerate().map(|(i, c)| (c, i)).collect();
        CharVocab { chars: set, ids }
    }

    /// Number of distinct characters.
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// Whether the vocabulary is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// Encodes a string to token ids.
    ///
    /// # Panics
    ///
    /// Panics on a character outside the vocabulary.
    pub fn encode(&self, text: &str) -> Vec<usize> {
        text.chars()
            .map(|c| {
                *self.ids.get(&c).unwrap_or_else(|| panic!("character {c:?} not in vocabulary"))
            })
            .collect()
    }

    /// Decodes token ids back to a string.
    ///
    /// # Panics
    ///
    /// Panics on an id out of range.
    pub fn decode(&self, ids: &[usize]) -> String {
        ids.iter().map(|&i| self.chars[i]).collect()
    }
}

/// A fixed byte-level vocabulary: ids are raw byte values, `len() == 256`.
/// No out-of-vocabulary failures, at the cost of longer sequences than a
/// fitted [`CharVocab`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByteVocab;

impl ByteVocab {
    /// Creates the byte vocabulary.
    pub fn new() -> Self {
        ByteVocab
    }

    /// Vocabulary size (always 256).
    pub fn len(&self) -> usize {
        256
    }

    /// Whether the vocabulary is empty (never).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Encodes UTF-8 text as its bytes.
    pub fn encode(&self, text: &str) -> Vec<usize> {
        text.bytes().map(usize::from).collect()
    }

    /// Decodes ids back to text (lossy for invalid UTF-8 sequences).
    ///
    /// # Panics
    ///
    /// Panics on an id ≥ 256.
    pub fn decode(&self, ids: &[usize]) -> String {
        let bytes: Vec<u8> =
            ids.iter().map(|&i| u8::try_from(i).expect("byte-vocab id must be < 256")).collect();
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_vocab_roundtrips_utf8() {
        let v = ByteVocab::new();
        for text in ["hello", "naïve café", "日本語"] {
            assert_eq!(v.decode(&v.encode(text)), text);
        }
        assert_eq!(v.len(), 256);
    }

    #[test]
    #[should_panic(expected = "must be < 256")]
    fn byte_vocab_rejects_large_ids() {
        let _ = ByteVocab::new().decode(&[300]);
    }

    #[test]
    fn roundtrip() {
        let v = CharVocab::from_corpus("hello world");
        assert_eq!(v.decode(&v.encode("hello world")), "hello world");
        assert_eq!(v.len(), 8); // ' ', d e h l o r w
    }

    #[test]
    fn ids_are_order_independent() {
        let a = CharVocab::from_corpus("abc");
        let b = CharVocab::from_corpus("cba");
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not in vocabulary")]
    fn rejects_unknown_characters() {
        let v = CharVocab::from_corpus("abc");
        let _ = v.encode("abd");
    }
}
