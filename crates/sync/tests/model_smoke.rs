//! End-to-end smoke tests for the `mt_check` scheduler itself, on small
//! synthetic scenarios with known answers. Only compiled under
//! `RUSTFLAGS="--cfg mt_check"` (the CI `model-check` job); an ordinary
//! `cargo test` sees an empty test binary.

#![cfg(mt_check)]

use mt_sync::{channel, model, thread, Condvar, ModelOpts, Mutex, OnceCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn mutex_counter_explores_and_stays_clean() {
    let report = model::check(ModelOpts::new("mutex-counter"), || {
        let counter = Mutex::new(0u32);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    *counter.lock() += 1;
                });
            }
        });
        assert_eq!(*counter.lock(), 2);
    });
    assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
    assert!(report.complete);
    assert!(report.executions >= 2, "lock order must branch: {}", report.executions);
    assert_eq!(report.timer_fires, 0);
}

#[test]
fn dpor_prunes_independent_mutexes() {
    // Two threads on two unrelated mutexes: every interleaving is
    // equivalent, so DPOR should need very few executions while the full
    // pass enumerates more.
    let report = model::check(
        ModelOpts { full_dfs_cap: 10_000, ..ModelOpts::new("independent-mutexes") },
        || {
            let a = Mutex::new(0u32);
            let b = Mutex::new(0u32);
            thread::scope(|s| {
                s.spawn(|| *a.lock() += 1);
                s.spawn(|| *b.lock() += 1);
            });
        },
    );
    assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
    assert!(report.complete && report.full_complete);
    let full = report.full_executions.unwrap();
    assert!(report.executions < full, "DPOR ({}) should beat full DFS ({full})", report.executions);
}

#[test]
fn condvar_handoff_is_clean_without_timer_help() {
    // Classic guarded handoff: the waiter must always be released by the
    // notification itself (timer_fires == 0 across all interleavings),
    // including the schedule where the setter runs before the wait starts.
    let report = model::check(ModelOpts::new("condvar-handoff"), || {
        let slot = Arc::new((Mutex::new(false), Condvar::new()));
        thread::scope(|s| {
            let setter = Arc::clone(&slot);
            s.spawn(move || {
                *setter.0.lock() = true;
                setter.1.notify_all();
            });
            let mut guard = slot.0.lock();
            while !*guard {
                let result = slot.1.wait_for(&mut guard, Duration::from_secs(5));
                assert!(!result.timed_out(), "handoff must not need the timeout");
            }
        });
    });
    assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
    assert!(report.complete);
    assert_eq!(report.timer_fires, 0, "a notification-driven handoff never times out");
}

#[test]
fn dropped_notify_is_reported_as_lost_wakeup() {
    // Same scenario, but the drop-notify mutation silences notify_all: the
    // waiter only recovers via its timeout, which the quiescent-progress
    // oracle reports as a lost wakeup.
    let report = model::check(
        ModelOpts {
            mutation: Some("drop-notify".to_string()),
            ..ModelOpts::new("condvar-handoff-mutated")
        },
        || {
            let slot = Arc::new((Mutex::new(false), Condvar::new()));
            thread::scope(|s| {
                let setter = Arc::clone(&slot);
                s.spawn(move || {
                    *setter.0.lock() = true;
                    setter.1.notify_all();
                });
                let mut guard = slot.0.lock();
                while !*guard {
                    let _ = slot.1.wait_for(&mut guard, Duration::from_secs(5));
                }
            });
        },
    );
    assert!(
        report.violations.iter().any(|v| v.contains("lost wakeup")),
        "mutated handoff must be caught: {:?}",
        report.violations
    );
}

#[test]
fn spurious_wakeup_branch_is_explored_and_predicate_loop_survives_it() {
    let hits = Arc::new(AtomicU64::new(0));
    let hits2 = Arc::clone(&hits);
    let report = model::check(
        ModelOpts { spurious_budget: 1, ..ModelOpts::new("spurious-predicate-loop") },
        move || {
            let slot = Arc::new((Mutex::new(false), Condvar::new()));
            let hits = Arc::clone(&hits2);
            thread::scope(|s| {
                let setter = Arc::clone(&slot);
                s.spawn(move || {
                    *setter.0.lock() = true;
                    setter.1.notify_all();
                });
                let mut guard = slot.0.lock();
                while !*guard {
                    let result = slot.1.wait_for(&mut guard, Duration::from_secs(5));
                    if !result.timed_out() && !*guard {
                        // Woken without the predicate: spurious wakeup.
                        hits.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        },
    );
    assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
    assert!(report.complete);
    assert!(
        hits.load(Ordering::SeqCst) > 0,
        "at least one explored schedule must deliver a spurious wakeup"
    );
}

#[test]
fn ab_ba_lock_order_deadlock_is_detected() {
    let report = model::check(ModelOpts::new("ab-ba-deadlock"), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        thread::scope(|s| {
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            s.spawn(move || {
                let _ga = a1.lock();
                let _gb = b1.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
        });
    });
    assert!(
        report.violations.iter().any(|v| v.contains("deadlock")),
        "AB-BA must deadlock in some schedule: {:?}",
        report.violations
    );
}

#[test]
fn channel_handoff_completes_without_timeout() {
    let report = model::check(ModelOpts::new("channel-handoff"), || {
        let (tx, rx) = channel::unbounded();
        thread::scope(|s| {
            s.spawn(move || {
                tx.send(41u32).expect("receiver alive");
            });
            let v = rx.recv_timeout(Duration::from_secs(5)).expect("message arrives");
            assert_eq!(v, 41);
        });
    });
    assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
    assert!(report.complete);
    assert_eq!(report.timer_fires, 0);
}

#[test]
fn recv_timeout_on_silent_channel_terminates_via_timeout() {
    // Timeout path: sender never sends; receive must end with Timeout in
    // every interleaving (no deadlock, no hang). Timer fires are expected.
    let report = model::check(
        ModelOpts { expect_quiescent_progress: false, ..ModelOpts::new("recv-timeout") },
        || {
            let (tx, rx) = channel::unbounded::<u32>();
            thread::scope(|s| {
                let tx2 = tx.clone();
                s.spawn(move || {
                    // Keeps a sender alive so disconnect cannot resolve the
                    // receive; only the virtual-time deadline can.
                    drop(tx2.clone());
                });
                let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
                assert_eq!(err, channel::RecvTimeoutError::Timeout);
            });
            drop(tx);
        },
    );
    assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
    assert!(report.complete);
    assert!(report.timer_fires > 0, "the deadline is the only way out");
}

#[test]
fn unsynchronized_once_cell_read_is_a_race() {
    let report = model::check(ModelOpts::new("once-cell-race"), || {
        let cell = Arc::new(OnceCell::new());
        thread::scope(|s| {
            let writer = Arc::clone(&cell);
            s.spawn(move || {
                let _ = writer.set(7u32);
            });
            // No synchronization with the setter: in the schedule where the
            // set lands first, this read observes it without an HB edge.
            let _ = cell.get();
        });
    });
    assert!(
        report.violations.iter().any(|v| v.contains("happens-before race")),
        "racy once-cell read must be flagged: {:?}",
        report.violations
    );
}

#[test]
fn channel_synchronized_once_cell_read_is_clean() {
    // Same shape, but the reader learns of the set through a channel
    // message: the message's clock carries the HB edge.
    let report = model::check(ModelOpts::new("once-cell-synced"), || {
        let cell = Arc::new(OnceCell::new());
        let (tx, rx) = channel::unbounded();
        thread::scope(|s| {
            let writer = Arc::clone(&cell);
            s.spawn(move || {
                let _ = writer.set(7u32);
                tx.send(()).expect("receiver alive");
            });
            rx.recv_timeout(Duration::from_secs(5)).expect("signal arrives");
            assert_eq!(cell.get(), Some(&7));
        });
    });
    assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
    assert!(report.complete);
}

#[test]
fn virtual_sleep_orders_nothing_and_costs_no_wall_time() {
    let wall = std::time::Instant::now();
    let report = model::check(
        ModelOpts { expect_quiescent_progress: false, ..ModelOpts::new("virtual-sleep") },
        || {
            let counter = Mutex::new(0u32);
            thread::scope(|s| {
                s.spawn(|| {
                    thread::sleep(Duration::from_secs(3600));
                    *counter.lock() += 1;
                });
                *counter.lock() += 1;
            });
            assert_eq!(*counter.lock(), 2);
        },
    );
    assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
    assert!(report.complete);
    assert!(wall.elapsed() < Duration::from_secs(60), "an hour-long sleep must be virtual");
}
