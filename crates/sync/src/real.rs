//! Real-build personality: pure re-exports of the vendored backends.
//!
//! With the default feature set every name below is a `pub use` — the facade
//! compiles away completely, which is what lets `bench_gate --sync` hold the
//! zero-overhead claim against the pre-facade baseline.
//!
//! The only exception is the test-only `spurious-inject` feature (enabled
//! through dev-dependencies, never in release artifacts): it swaps
//! [`Condvar`] for a thin wrapper whose waits can be forced to wake
//! spuriously, so regression tests can prove every wait site re-checks its
//! predicate.

pub use parking_lot::{Mutex, MutexGuard, RwLock};

#[cfg(not(feature = "spurious-inject"))]
pub use parking_lot::{Condvar, WaitTimeoutResult};

/// Unbounded MPSC channels (vendored `crossbeam::channel` API subset).
pub mod channel {
    pub use crossbeam::channel::*;
}

/// Thread spawning and sleeping. Real builds use `std::thread` directly;
/// under `mt_check` scoped spawns become schedulable transitions.
pub mod thread {
    pub use std::thread::{scope, sleep, Scope, ScopedJoinHandle};
}

/// Clock reads. Real builds use `std::time::Instant`; under `mt_check` the
/// clock is virtual and only advances when the scheduler is quiescent.
pub mod time {
    pub use std::time::Instant;
}

/// A write-once cell (`std::sync::OnceLock` in real builds; a transition
/// with happens-before tracking under `mt_check`).
pub type OnceCell<T> = std::sync::OnceLock<T>;

#[cfg(feature = "spurious-inject")]
pub use self::inject::{Condvar, WaitTimeoutResult};

/// Test-only spurious-wakeup injection (`spurious-inject` feature).
#[cfg(feature = "spurious-inject")]
pub mod spurious {
    use std::sync::atomic::{AtomicUsize, Ordering};

    pub(crate) static PENDING: AtomicUsize = AtomicUsize::new(0);

    /// Arms the next `n` condvar waits (process-wide) to return immediately
    /// as if woken spuriously, without a notification and without timing
    /// out. Correct wait sites re-check their predicate and wait again.
    pub fn inject(n: usize) {
        PENDING.fetch_add(n, Ordering::SeqCst);
    }

    /// Consumes one pending injection if any are armed.
    pub(crate) fn take() -> bool {
        PENDING.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1)).is_ok()
    }
}

#[cfg(feature = "spurious-inject")]
mod inject {
    use super::{spurious, MutexGuard};
    use std::time::Duration;

    /// A condition variable whose waits can be forced to wake spuriously
    /// via [`spurious::inject`]. API-identical to the default re-export.
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: parking_lot::Condvar,
    }

    impl Condvar {
        /// Creates a condition variable.
        pub const fn new() -> Self {
            Condvar { inner: parking_lot::Condvar::new() }
        }

        /// Waits until notified — or returns immediately if a spurious
        /// wakeup is armed.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            if spurious::take() {
                return;
            }
            self.inner.wait(guard);
        }

        /// Waits with a timeout — an armed spurious wakeup returns
        /// immediately without timing out.
        pub fn wait_for<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            timeout: Duration,
        ) -> WaitTimeoutResult {
            if spurious::take() {
                return WaitTimeoutResult { timed_out: false };
            }
            WaitTimeoutResult { timed_out: self.inner.wait_for(guard, timeout).timed_out() }
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes all waiters.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    /// Result of [`Condvar::wait_for`]: whether the wait ended by timeout.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult {
        pub(super) timed_out: bool,
    }

    impl WaitTimeoutResult {
        /// `true` if the wait ended because the timeout elapsed.
        pub fn timed_out(&self) -> bool {
            self.timed_out
        }
    }
}
