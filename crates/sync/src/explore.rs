//! Schedule exploration bookkeeping: depth-first enumeration of thread
//! interleavings with dynamic partial-order reduction (DPOR).
//!
//! This module is deliberately runtime-agnostic: an execution is summarized
//! as a sequence of [`StepRecord`]s (who was scheduled, who else was enabled,
//! which objects the transition touched), and [`Explorer::record_execution`]
//! answers with the schedule prefix to replay next — or `None` when the
//! space is exhausted. The `mt_check` runtime feeds it real traces; the unit
//! tests feed it synthetic programs with known interleaving counts.
//!
//! DPOR is the classic Flanagan–Godefroid scheme, conservative variant: for
//! every transition `j`, find the most recent earlier transition `i` by a
//! different thread that *conflicts* (touches a common object, at least one
//! side writing). If `j`'s choice was enabled at `i`'s decision point it is
//! added to `i`'s backtrack set, otherwise every alternative at `i` is
//! (conservative over-approximation, sound for enabledness-dependent
//! transitions like lock acquisition). [`Mode::Full`] disables the pruning —
//! the checker runs it capped to measure the DPOR reduction ratio reported
//! in `CHECK.json`.

use std::collections::BTreeSet;

/// Identifies one schedulable transition at a decision point: a thread's
/// pending operation, or (for condvar waiters, when the scenario opts in) a
/// spurious wakeup delivered to a blocked thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChoiceKey {
    /// Scheduled thread id.
    pub tid: usize,
    /// `true` for the injected-spurious-wakeup pseudo-transition.
    pub spurious: bool,
}

impl std::fmt::Display for ChoiceKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.spurious {
            write!(f, "t{}!", self.tid)
        } else {
            write!(f, "t{}", self.tid)
        }
    }
}

/// One object access performed by a transition, for the conflict relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Object identity (address of the primitive within the execution).
    pub obj: u64,
    /// Writes conflict with everything; two reads commute.
    pub write: bool,
}

/// One executed transition, as reported back by the runtime.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// The transition that was scheduled.
    pub key: ChoiceKey,
    /// Every transition that was enabled at this decision point (including
    /// the chosen one).
    pub alternatives: Vec<ChoiceKey>,
    /// Objects this transition touched.
    pub accesses: Vec<Access>,
}

fn conflicting(a: &StepRecord, b: &StepRecord) -> bool {
    if a.key.tid == b.key.tid {
        return false;
    }
    a.accesses.iter().any(|x| b.accesses.iter().any(|y| x.obj == y.obj && (x.write || y.write)))
}

/// Exploration mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// DPOR-pruned: only schedules that can change the partial order.
    Dpor,
    /// Exhaustive DFS over every enabled alternative (for measuring the
    /// reduction ratio; capped by the caller).
    Full,
}

#[derive(Debug)]
struct Node {
    chosen: ChoiceKey,
    alternatives: Vec<ChoiceKey>,
    tried: BTreeSet<ChoiceKey>,
    backtrack: BTreeSet<ChoiceKey>,
}

/// Depth-first schedule explorer. Feed it each execution's trace; it yields
/// the next prefix to force, until the (reduced) space is exhausted.
#[derive(Debug)]
pub struct Explorer {
    mode: Mode,
    stack: Vec<Node>,
    /// Executions recorded so far.
    pub executions: u64,
    /// Total transitions across all executions.
    pub transitions: u64,
    /// Deepest execution seen (transitions in the longest trace).
    pub max_depth: usize,
}

impl Explorer {
    /// A fresh explorer in the given mode.
    pub fn new(mode: Mode) -> Self {
        Explorer { mode, stack: Vec::new(), executions: 0, transitions: 0, max_depth: 0 }
    }

    /// Records a completed execution and computes the next schedule prefix.
    /// Returns `None` when every required interleaving has been explored.
    pub fn record_execution(&mut self, trace: &[StepRecord]) -> Option<Vec<ChoiceKey>> {
        self.executions += 1;
        self.transitions += trace.len() as u64;
        self.max_depth = self.max_depth.max(trace.len());

        // Grow the path: steps beyond the current stack are new nodes.
        assert!(
            trace.len() >= self.stack.len(),
            "replayed execution shorter than its forced prefix ({} < {})",
            trace.len(),
            self.stack.len()
        );
        for step in &trace[self.stack.len()..] {
            let mut tried = BTreeSet::new();
            tried.insert(step.key);
            let mut backtrack = BTreeSet::new();
            backtrack.insert(step.key);
            self.stack.push(Node {
                chosen: step.key,
                alternatives: step.alternatives.clone(),
                tried,
                backtrack,
            });
        }

        // Seed backtrack sets.
        match self.mode {
            Mode::Full => {
                for (node, step) in self.stack.iter_mut().zip(trace) {
                    node.backtrack.extend(step.alternatives.iter().copied());
                }
            }
            Mode::Dpor => {
                // Spurious-wakeup pseudo-transitions are opt-in branch
                // points, not conflict-driven: they never appear in a trace
                // unless scheduled, so the conflict rule below would never
                // add them. Force every enabled spurious alternative into
                // the backtrack set.
                for (node, step) in self.stack.iter_mut().zip(trace) {
                    node.backtrack.extend(step.alternatives.iter().filter(|k| k.spurious));
                }
                for j in 0..trace.len() {
                    let Some(i) = (0..j).rev().find(|&i| conflicting(&trace[i], &trace[j])) else {
                        continue;
                    };
                    let want = trace[j].key;
                    let node = &mut self.stack[i];
                    if node.alternatives.contains(&want) {
                        node.backtrack.insert(want);
                    } else {
                        // `want` was not enabled at i (e.g. blocked on the
                        // very lock i touched): conservatively schedule
                        // every alternative.
                        let alts: Vec<ChoiceKey> = node.alternatives.clone();
                        node.backtrack.extend(alts);
                    }
                }
            }
        }

        // Next prefix: deepest node with an untried backtrack entry.
        while let Some(node) = self.stack.last_mut() {
            if let Some(&next) = node.backtrack.difference(&node.tried).next() {
                node.tried.insert(next);
                node.chosen = next;
                return Some(self.stack.iter().map(|n| n.chosen).collect());
            }
            self.stack.pop();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives an explorer over a synthetic "program": `threads[t]` is the
    /// ordered list of accesses thread `t` performs, one transition each.
    /// All transitions are always enabled (no blocking), so Full mode must
    /// enumerate every interleaving of the remaining ops.
    fn run_program(mode: Mode, threads: &[Vec<Access>]) -> Explorer {
        let mut explorer = Explorer::new(mode);
        let mut prefix: Vec<ChoiceKey> = Vec::new();
        for _round in 0..100_000 {
            // Execute: follow prefix, then first-enabled.
            let mut pcs = vec![0usize; threads.len()];
            let mut trace = Vec::new();
            let mut step = 0usize;
            loop {
                let enabled: Vec<ChoiceKey> = (0..threads.len())
                    .filter(|&t| pcs[t] < threads[t].len())
                    .map(|tid| ChoiceKey { tid, spurious: false })
                    .collect();
                if enabled.is_empty() {
                    break;
                }
                let key = prefix.get(step).copied().unwrap_or(enabled[0]);
                assert!(enabled.contains(&key), "replay divergence in test program");
                trace.push(StepRecord {
                    key,
                    alternatives: enabled,
                    accesses: vec![threads[key.tid][pcs[key.tid]]],
                });
                pcs[key.tid] += 1;
                step += 1;
            }
            match explorer.record_execution(&trace) {
                Some(p) => prefix = p,
                None => return explorer,
            }
        }
        panic!("explorer failed to terminate");
    }

    #[test]
    fn full_mode_enumerates_every_interleaving() {
        // 2 threads x 2 ops: C(4,2) = 6 interleavings.
        let a = Access { obj: 1, write: true };
        let b = Access { obj: 2, write: true };
        let ex = run_program(Mode::Full, &[vec![a, a], vec![b, b]]);
        assert_eq!(ex.executions, 6);
    }

    #[test]
    fn dpor_collapses_independent_threads_to_one_execution() {
        // Disjoint objects: all interleavings are equivalent; DPOR must
        // explore exactly one.
        let a = Access { obj: 1, write: true };
        let b = Access { obj: 2, write: true };
        let ex = run_program(Mode::Dpor, &[vec![a, a], vec![b, b]]);
        assert_eq!(ex.executions, 1);
    }

    #[test]
    fn dpor_explores_conflicting_writes_but_fewer_than_full() {
        // Same object: order matters. DPOR must explore more than one
        // execution but can still beat full enumeration.
        let w = Access { obj: 7, write: true };
        let dpor = run_program(Mode::Dpor, &[vec![w, w], vec![w, w]]);
        let full = run_program(Mode::Full, &[vec![w, w], vec![w, w]]);
        assert_eq!(full.executions, 6);
        assert!(dpor.executions > 1, "conflicting writes need >1 execution");
        assert!(dpor.executions <= full.executions);
    }

    #[test]
    fn dpor_treats_concurrent_reads_as_independent() {
        let r = Access { obj: 7, write: false };
        let ex = run_program(Mode::Dpor, &[vec![r, r], vec![r, r]]);
        assert_eq!(ex.executions, 1, "read-read does not conflict");
    }

    #[test]
    fn dpor_always_explores_enabled_spurious_wakeups() {
        // One normal thread, with a spurious pseudo-transition for a blocked
        // thread enabled at its decision point. The spurious branch touches
        // no conflicting object, so plain DPOR would skip it; the explorer
        // must force it.
        let mut explorer = Explorer::new(Mode::Dpor);
        let normal = ChoiceKey { tid: 0, spurious: false };
        let spur = ChoiceKey { tid: 1, spurious: true };
        let mut spurious_seen = false;
        let mut prefix: Vec<ChoiceKey> = Vec::new();
        for _ in 0..100 {
            let key = prefix.first().copied().unwrap_or(normal);
            spurious_seen |= key == spur;
            let trace = vec![StepRecord {
                key,
                alternatives: vec![normal, spur],
                accesses: vec![Access { obj: 1, write: true }],
            }];
            match explorer.record_execution(&trace) {
                Some(p) => prefix = p,
                None => break,
            }
        }
        assert!(spurious_seen, "spurious alternative was never scheduled");
        assert_eq!(explorer.executions, 2);
    }

    #[test]
    fn three_thread_full_count_matches_multinomial() {
        // 3 threads x 1 op each, distinct objects: 3! = 6 interleavings.
        let mk = |o| Access { obj: o, write: true };
        let ex = run_program(Mode::Full, &[vec![mk(1)], vec![mk(2)], vec![mk(3)]]);
        assert_eq!(ex.executions, 6);
        let dpor = run_program(Mode::Dpor, &[vec![mk(1)], vec![mk(2)], vec![mk(3)]]);
        assert_eq!(dpor.executions, 1);
    }
}
