//! The model-checking entry point: explores every schedule of a scenario.
//!
//! [`check`] runs the scenario body repeatedly, once per explored
//! interleaving. Each execution gets a fresh [`Runtime`] seeded with the
//! schedule prefix the [`Explorer`] wants to force next; the runtime replays
//! the prefix, extends it first-enabled, and hands the resulting trace back
//! for DPOR backtracking. The loop stops when the (reduced) schedule space
//! is exhausted, a cap is hit, or an execution produces a violation — the
//! first violating execution ends the pass, with the violating schedule
//! embedded in the message for reproduction.
//!
//! Scenario bodies must be deterministic apart from scheduling: all
//! randomness and time must come from the facade (the virtual clock), and
//! every sync object must be created inside the body so each execution
//! starts from the same state. The workspace code under check already
//! satisfies this by construction (the facade is its only sync layer).
//!
//! On top of the runtime's own oracles (deadlock, race, replay divergence,
//! step budget, root panic), this layer adds the *lost-wakeup* oracle: with
//! [`ModelOpts::expect_quiescent_progress`] set (the default), any execution
//! that only progressed because a virtual-time timeout fired is a violation.
//! A dropped `notify_all` rarely deadlocks hardened code — the timeout
//! recovery masks it into plain latency — but under this oracle the masking
//! itself is detected.

use super::runtime::{self, Runtime};
use crate::explore::{Explorer, Mode as ExploreMode};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

/// Configuration for one [`check`] run.
#[derive(Debug, Clone)]
pub struct ModelOpts {
    /// Scenario name (for reports and messages).
    pub name: String,
    /// Hard cap on explored executions in the DPOR pass (safety net; a
    /// scenario that hits it reports `complete: false`).
    pub max_executions: u64,
    /// Per-execution transition budget (livelock guard).
    pub max_steps: usize,
    /// How many spurious condvar wakeups the scheduler may inject per
    /// execution (each is an explored branch point).
    pub spurious_budget: u32,
    /// When `true`, any execution that needed a virtual-time timeout to make
    /// progress is a lost-wakeup violation.
    pub expect_quiescent_progress: bool,
    /// When nonzero, additionally run a capped full-DFS pass (no DPOR) to
    /// measure the reduction ratio reported in `CHECK.json`.
    pub full_dfs_cap: u64,
    /// Seeded bug to arm for this run (see [`crate::mutation`]). Armed under
    /// the process-wide model guard so concurrent test harnesses cannot
    /// observe each other's mutations, and disarmed before returning.
    pub mutation: Option<String>,
}

impl ModelOpts {
    /// Defaults for a named scenario.
    pub fn new(name: &str) -> Self {
        ModelOpts {
            name: name.to_string(),
            max_executions: 200_000,
            max_steps: 20_000,
            spurious_budget: 0,
            expect_quiescent_progress: true,
            full_dfs_cap: 0,
            mutation: None,
        }
    }
}

/// Outcome of a [`check`] run.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Scenario name.
    pub name: String,
    /// Executions explored by the DPOR pass.
    pub executions: u64,
    /// Total transitions across all DPOR executions.
    pub transitions: u64,
    /// Longest execution (in transitions).
    pub max_depth: usize,
    /// Virtual-time timeout fires summed over all executions.
    pub timer_fires: u64,
    /// Every violation found (empty for a clean scenario).
    pub violations: Vec<String>,
    /// `true` iff the DPOR pass exhausted the reduced schedule space.
    pub complete: bool,
    /// Executions explored by the optional full-DFS pass.
    pub full_executions: Option<u64>,
    /// `true` iff the full-DFS pass exhausted the unreduced space (when it
    /// ran); `false` means it hit its cap, making the ratio a lower bound.
    pub full_complete: bool,
}

impl ModelReport {
    /// Clean and exhaustive.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.complete
    }
}

struct Pass {
    executions: u64,
    transitions: u64,
    max_depth: usize,
    timer_fires: u64,
    violations: Vec<String>,
    complete: bool,
}

/// Only one model run may own the process-global runtime slot at a time
/// (parallel test harnesses serialize here).
static MODEL_GUARD: StdMutex<()> = StdMutex::new(());

/// Explores every interleaving of `body` and reports what was found.
pub fn check<F>(opts: ModelOpts, body: F) -> ModelReport
where
    F: Fn() + Send + Sync + 'static,
{
    let _guard = MODEL_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            crate::mutation::disarm();
        }
    }
    let _disarm = Disarm;
    match &opts.mutation {
        Some(m) => crate::mutation::arm(m),
        None => crate::mutation::disarm(),
    }
    // Quiet panic hook for the duration of the run: exploration panics are
    // expected events (violations capture them with their schedule), so the
    // default print-with-backtrace would only flood the output. The message
    // is recorded instead and folded into the violation text.
    struct RestoreHook(Option<Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>>);
    impl Drop for RestoreHook {
        fn drop(&mut self) {
            if let Some(hook) = self.0.take() {
                std::panic::set_hook(hook);
            }
        }
    }
    let _restore = RestoreHook(Some(std::panic::take_hook()));
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let loc = info.location().map(|l| format!(" at {l}")).unwrap_or_default();
        runtime::record_panic(format!("{msg}{loc}"));
    }));
    let body = Arc::new(body);
    let dpor = explore_pass(ExploreMode::Dpor, &opts, &body, opts.max_executions);
    let mut report = ModelReport {
        name: opts.name.clone(),
        executions: dpor.executions,
        transitions: dpor.transitions,
        max_depth: dpor.max_depth,
        timer_fires: dpor.timer_fires,
        violations: dpor.violations,
        complete: dpor.complete,
        full_executions: None,
        full_complete: false,
    };
    if report.violations.is_empty() && opts.full_dfs_cap > 0 {
        let full = explore_pass(ExploreMode::Full, &opts, &body, opts.full_dfs_cap);
        report.full_executions = Some(full.executions);
        report.full_complete = full.complete;
        // A violation only the unreduced pass finds would be a DPOR
        // soundness bug — surface it loudly rather than swallowing it.
        report
            .violations
            .extend(full.violations.into_iter().map(|v| format!("full-dfs only: {v}")));
    }
    report
}

fn explore_pass<F>(mode: ExploreMode, opts: &ModelOpts, body: &Arc<F>, cap: u64) -> Pass
where
    F: Fn() + Send + Sync + 'static,
{
    let mut explorer = Explorer::new(mode);
    let mut prefix = Vec::new();
    let mut timer_fires = 0u64;
    let mut violations = Vec::new();
    let mut complete = false;
    loop {
        let _ = runtime::take_last_panic(); // drop any stale prior-execution message
        let rt = Runtime::new(prefix.clone(), opts.max_steps, opts.spurious_budget);
        rt.install();
        let rt2 = Arc::clone(&rt);
        let body2 = Arc::clone(body);
        let root = std::thread::Builder::new()
            .name("mt-check-root".into())
            .spawn(move || {
                runtime::set_tid(0);
                rt2.wait_for_start(0);
                let result = catch_unwind(AssertUnwindSafe(|| body2()));
                rt2.thread_finished(0, result.is_err());
            })
            .expect("failed to spawn scenario root thread");
        let result = rt.controller_run();
        let _ = root.join();
        Runtime::uninstall();

        timer_fires += result.timer_fires;
        let mut found = result.violations;
        if found.is_empty() && opts.expect_quiescent_progress && result.timer_fires > 0 {
            found.push(format!(
                "lost wakeup: {} timeout-driven recover{} in a scenario that must progress \
                 through notifications alone; schedule [{}]",
                result.timer_fires,
                if result.timer_fires == 1 { "y" } else { "ies" },
                runtime::schedule_string(&result.trace)
            ));
        }
        if !found.is_empty() {
            violations.extend(found);
            break;
        }
        match explorer.record_execution(&result.trace) {
            Some(next) => prefix = next,
            None => {
                complete = true;
                break;
            }
        }
        if explorer.executions >= cap {
            break;
        }
    }
    Pass {
        executions: explorer.executions,
        transitions: explorer.transitions,
        max_depth: explorer.max_depth,
        timer_fires,
        violations,
        complete,
    }
}
