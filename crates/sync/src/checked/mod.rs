//! Model-checking personality (`--cfg mt_check`): instrumented primitives
//! plus the exploration scheduler and the [`model`] entry point.
//!
//! Layout:
//!
//! * [`runtime`](self) (private) — the per-execution cooperative scheduler:
//!   virtual clock, enabledness model, vector-clock effects, abort drain.
//! * `prims` — the facade types ([`Mutex`], [`Condvar`], [`channel`],
//!   [`thread`], [`time`], …) that announce every operation to the runtime.
//! * [`model`] — [`model::check`]: the explore-replay loop plus oracles.

pub(crate) mod runtime;

mod prims;

pub mod model;

pub use model::{ModelOpts, ModelReport};
pub use prims::{
    channel, thread, time, Condvar, Mutex, MutexGuard, OnceCell, RwLock, RwLockReadGuard,
    RwLockWriteGuard, WaitTimeoutResult,
};
