//! Instrumented primitives for `mt_check` builds.
//!
//! Every type here wraps the *real* `std` primitive and mirrors the facade's
//! real-build API (vendored `parking_lot` / `crossbeam` subset), but each
//! operation first announces itself to the active [`runtime::Runtime`] and
//! parks until the controller schedules it. Once scheduled, the real
//! operation can no longer block: the model only grants transitions the real
//! primitive would allow (a mutex is granted only when the model says it is
//! free, a receive only when the channel has a message or no senders), and
//! mutual exclusion is guaranteed by the one-thread-at-a-time serialization.
//! This keeps the whole checker free of `unsafe`.
//!
//! Outside an active model run ([`runtime::Mode::Unmanaged`] — e.g. plain
//! `cargo test` with the cfg on) everything degrades to real `std` behavior.
//! During a condemned execution ([`runtime::Mode::Aborting`]) waits are
//! capped at a millisecond so deadline-checked loops drain through their own
//! timeout paths against the virtual clock, which abort pins past every
//! deadline.
//!
//! Known over-approximations, accepted deliberately:
//!
//! * Mutexes, condvars, and once-cells are identified by address and their
//!   model entries are never garbage-collected within an execution; if an
//!   address is reused the new primitive inherits the old entry's vector
//!   clock. That only *adds* happens-before edges (may mask, never invent,
//!   a race on a reused address) and scenarios are small enough that it does
//!   not occur in practice. Channels, whose queue state would be genuinely
//!   corrupted by reuse, carry an owned [`runtime::ChanCore`] identity and
//!   the model detects stale entries through a dead `Weak`.
//! * [`RwLock`] is modeled as an exclusive lock: two readers serialize in
//!   the model even though the real lock admits them concurrently. Sound
//!   (never produces a false deadlock — the first reader's unlock re-enables
//!   the second) but it can hide reader-reader-overlap-dependent schedules;
//!   no code under check relies on shared read access.

use super::runtime::{self, ChanCore, Mode, Op, Outcome, RecvOutcome, Tid, WakeReason};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};
use std::time::Duration;

fn addr_of<T: ?Sized>(x: &T) -> usize {
    x as *const T as *const u8 as usize
}

/// How long a bounded real-lock acquisition spins before declaring the
/// thread condemned (only reachable during an abort drain).
const CONDEMNED_LOCK_SPIN: Duration = Duration::from_millis(500);

/// Acquires a real lock via `acquire`, bounded whenever a model runtime is
/// installed. Under a healthy model the grant guarantees the lock is free
/// and the first try succeeds; during an abort drain the model no longer
/// guarantees exclusion, and a genuine lock-cycle deadlock (the very bug
/// being reported) would otherwise hang the drain on the real primitives.
/// A condemned thread that cannot acquire panics instead — the panic
/// unwinds it out of the scenario (violations were already recorded).
fn bounded_real_acquire<G>(mut acquire: impl FnMut() -> Option<G>, block: impl FnOnce() -> G) -> G {
    if let Some(g) = acquire() {
        return g;
    }
    if matches!(runtime::mode(), Mode::Unmanaged) {
        return block();
    }
    let start = std::time::Instant::now();
    while start.elapsed() < CONDEMNED_LOCK_SPIN {
        if let Some(g) = acquire() {
            return g;
        }
        std::thread::sleep(Duration::from_micros(50));
    }
    panic!("mt-check abort drain: real lock unavailable (condemned thread gives up)");
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutex whose acquire/release are schedulable transitions.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (exclusive borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Mode::Managed(rt, tid) = runtime::mode() {
            rt.yield_op(tid, Op::Lock { m: addr_of(self) });
        }
        MutexGuard { lock: self, inner: Some(real_lock(&self.inner)) }
    }
}

fn real_lock<T: ?Sized>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    bounded_real_acquire(|| m.try_lock().ok(), || m.lock().unwrap_or_else(PoisonError::into_inner))
}

/// RAII guard for [`Mutex`]; releasing is itself a transition.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed mid-wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed mid-wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(real) = self.inner.take() {
            // Real release first, model release second: when the model
            // grants the next owner, the real mutex is already free.
            drop(real);
            if let Mode::Managed(rt, tid) = runtime::mode() {
                rt.yield_op(tid, Op::Unlock { m: addr_of(self.lock) });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable whose waits, notifications, timeouts, and spurious
/// wakeups are all schedulable transitions.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    fn wait_inner<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Option<Duration>,
    ) -> WakeReason {
        match runtime::mode() {
            Mode::Managed(rt, tid) => {
                // Drop the real guard, announce the atomic
                // release-and-block, and park. The single yield covers the
                // entire wait: the controller converts this thread to
                // blocked, and a notify / timer fire / spurious wake
                // re-posts it as a lock-reacquire transition whose grant is
                // the outcome received here.
                let m = addr_of(guard.lock);
                guard.inner = None;
                let timeout_ns = timeout.map(|d| d.as_nanos().min(u64::MAX as u128) as u64);
                let out = rt.yield_op(tid, Op::CondWait { cv: addr_of(self), m, timeout_ns });
                // Model-side reacquire already happened; the real mutex is
                // guaranteed free for us (bounded anyway, for abort drains).
                guard.inner = Some(real_lock(&guard.lock.inner));
                match out {
                    Outcome::Wait(reason) => reason,
                    other => unreachable!("condvar wait resolved as {other:?}"),
                }
            }
            Mode::Aborting => {
                let real = guard.inner.take().expect("guard accessed mid-wait");
                let capped =
                    timeout.unwrap_or(Duration::from_millis(1)).min(Duration::from_millis(1));
                let (real, _) =
                    self.inner.wait_timeout(real, capped).unwrap_or_else(PoisonError::into_inner);
                guard.inner = Some(real);
                WakeReason::TimedOut
            }
            Mode::Unmanaged => {
                let real = guard.inner.take().expect("guard accessed mid-wait");
                match timeout {
                    Some(d) => {
                        let (real, res) = self
                            .inner
                            .wait_timeout(real, d)
                            .unwrap_or_else(PoisonError::into_inner);
                        guard.inner = Some(real);
                        if res.timed_out() {
                            WakeReason::TimedOut
                        } else {
                            WakeReason::Notified
                        }
                    }
                    None => {
                        let real = self.inner.wait(real).unwrap_or_else(PoisonError::into_inner);
                        guard.inner = Some(real);
                        WakeReason::Notified
                    }
                }
            }
        }
    }

    /// Blocks until notified (or woken spuriously, if the model injects it).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.wait_inner(guard, None);
    }

    /// Blocks until notified or the (virtual-time) timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let reason = self.wait_inner(guard, Some(timeout));
        WaitTimeoutResult { timed_out: reason == WakeReason::TimedOut }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        if let Mode::Managed(rt, tid) = runtime::mode() {
            rt.yield_op(tid, Op::NotifyOne { cv: addr_of(self) });
        }
        self.inner.notify_one();
    }

    /// Wakes all waiters. The `drop-notify` mutation (self-validation of the
    /// checker: a classic lost-wakeup bug) turns this into a no-op.
    pub fn notify_all(&self) {
        if crate::mutation::armed("drop-notify") {
            return;
        }
        if let Mode::Managed(rt, tid) = runtime::mode() {
            rt.yield_op(tid, Op::NotifyAll { cv: addr_of(self) });
        }
        self.inner.notify_all();
    }
}

// ---------------------------------------------------------------------------
// RwLock (modeled as exclusive; see module docs)
// ---------------------------------------------------------------------------

/// A reader-writer lock; under the model both sides are exclusive.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Acquires shared access (exclusive under the model).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if let Mode::Managed(rt, tid) = runtime::mode() {
            rt.yield_op(tid, Op::Lock { m: addr_of(self) });
        }
        RwLockReadGuard {
            lock: self,
            inner: Some(bounded_real_acquire(
                || self.inner.try_read().ok(),
                || self.inner.read().unwrap_or_else(PoisonError::into_inner),
            )),
        }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if let Mode::Managed(rt, tid) = runtime::mode() {
            rt.yield_op(tid, Op::Lock { m: addr_of(self) });
        }
        RwLockWriteGuard {
            lock: self,
            inner: Some(bounded_real_acquire(
                || self.inner.try_write().ok(),
                || self.inner.write().unwrap_or_else(PoisonError::into_inner),
            )),
        }
    }
}

/// Shared guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed mid-wait")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(real) = self.inner.take() {
            drop(real);
            if let Mode::Managed(rt, tid) = runtime::mode() {
                rt.yield_op(tid, Op::Unlock { m: addr_of(self.lock) });
            }
        }
    }
}

/// Exclusive guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed mid-wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed mid-wait")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(real) = self.inner.take() {
            drop(real);
            if let Mode::Managed(rt, tid) = runtime::mode() {
                rt.yield_op(tid, Op::Unlock { m: addr_of(self.lock) });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// OnceCell
// ---------------------------------------------------------------------------

/// A write-once cell whose set/get participate in happens-before tracking:
/// a get that observes the value without an HB edge from the set is reported
/// as a race by the model.
#[derive(Debug, Default)]
pub struct OnceCell<T> {
    inner: std::sync::OnceLock<T>,
}

impl<T> OnceCell<T> {
    /// Creates an empty cell.
    pub const fn new() -> Self {
        OnceCell { inner: std::sync::OnceLock::new() }
    }

    /// Stores a value; errors with it if already set.
    pub fn set(&self, value: T) -> Result<(), T> {
        if let Mode::Managed(rt, tid) = runtime::mode() {
            rt.yield_op(tid, Op::CellSet { c: addr_of(self) });
        }
        self.inner.set(value)
    }

    /// Reads the value if set. Under the model this is where the race check
    /// fires.
    pub fn get(&self) -> Option<&T> {
        if let Mode::Managed(rt, tid) = runtime::mode() {
            rt.yield_op(tid, Op::CellGet { c: addr_of(self) });
        }
        self.inner.get()
    }
}

// ---------------------------------------------------------------------------
// Channels
// ---------------------------------------------------------------------------

/// Unbounded MPSC channels; sends and receives are schedulable transitions
/// and `recv_timeout` deadlines live on the virtual clock.
pub mod channel {
    use super::*;

    /// Error from [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the (virtual) deadline.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// The sending half.
    pub struct Sender<T> {
        inner: crossbeam::channel::Sender<T>,
        core: Arc<ChanCore>,
    }

    /// The receiving half.
    pub struct Receiver<T> {
        inner: crossbeam::channel::Receiver<T>,
        core: Arc<ChanCore>,
    }

    fn chan_id(core: &Arc<ChanCore>) -> usize {
        Arc::as_ptr(core) as usize
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = crossbeam::channel::unbounded();
        let core = ChanCore::new();
        (Sender { inner: s, core: Arc::clone(&core) }, Receiver { inner: r, core })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.core.senders.fetch_add(1, Ordering::SeqCst);
            Sender { inner: self.inner.clone(), core: Arc::clone(&self.core) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.core.senders.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.core.receiver_alive.store(false, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Sends a message.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if let Mode::Managed(rt, tid) = runtime::mode() {
                rt.ensure_chan(chan_id(&self.core), &self.core);
                rt.yield_op(tid, Op::Send { ch: chan_id(&self.core) });
            }
            if !self.core.receiver_alive.load(Ordering::SeqCst) {
                return Err(SendError(value));
            }
            match self.inner.send(value) {
                Ok(()) => {
                    self.core.len.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }
                Err(e) => Err(SendError(e.0)),
            }
        }
    }

    impl<T> Receiver<T> {
        fn take_granted_msg(&self) -> T {
            let v =
                self.inner.try_recv().expect("model granted a receive but the real queue is empty");
            self.core.len.fetch_sub(1, Ordering::SeqCst);
            v
        }

        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            match runtime::mode() {
                Mode::Managed(rt, tid) => {
                    rt.ensure_chan(chan_id(&self.core), &self.core);
                    let out =
                        rt.yield_op(tid, Op::Recv { ch: chan_id(&self.core), deadline: None });
                    match out {
                        Outcome::Recv(RecvOutcome::Msg) => Ok(self.take_granted_msg()),
                        Outcome::Recv(_) => Err(RecvError),
                        other => unreachable!("recv resolved as {other:?}"),
                    }
                }
                Mode::Aborting => {
                    // Never block a condemned execution indefinitely.
                    match self.inner.recv_timeout(Duration::from_millis(1)) {
                        Ok(v) => {
                            self.core.len.fetch_sub(1, Ordering::SeqCst);
                            Ok(v)
                        }
                        Err(_) => Err(RecvError),
                    }
                }
                Mode::Unmanaged => match self.inner.recv() {
                    Ok(v) => {
                        self.core.len.fetch_sub(1, Ordering::SeqCst);
                        Ok(v)
                    }
                    Err(_) => Err(RecvError),
                },
            }
        }

        /// Blocks until a message arrives, every sender is gone, or the
        /// (virtual-time) timeout elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            match runtime::mode() {
                Mode::Managed(rt, tid) => {
                    rt.ensure_chan(chan_id(&self.core), &self.core);
                    let ns = timeout.as_nanos().min(u64::MAX as u128) as u64;
                    let deadline = rt.clock_ns().saturating_add(ns);
                    let out = rt.yield_op(
                        tid,
                        Op::Recv { ch: chan_id(&self.core), deadline: Some(deadline) },
                    );
                    match out {
                        Outcome::Recv(RecvOutcome::Msg) => Ok(self.take_granted_msg()),
                        Outcome::Recv(RecvOutcome::Empty) => Err(RecvTimeoutError::Timeout),
                        Outcome::Recv(RecvOutcome::Disconnected) => {
                            Err(RecvTimeoutError::Disconnected)
                        }
                        other => unreachable!("recv_timeout resolved as {other:?}"),
                    }
                }
                Mode::Aborting => {
                    let capped = timeout.min(Duration::from_millis(1));
                    match self.inner.recv_timeout(capped) {
                        Ok(v) => {
                            self.core.len.fetch_sub(1, Ordering::SeqCst);
                            Ok(v)
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                            Err(RecvTimeoutError::Timeout)
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                            Err(RecvTimeoutError::Disconnected)
                        }
                    }
                }
                Mode::Unmanaged => match self.inner.recv_timeout(timeout) {
                    Ok(v) => {
                        self.core.len.fetch_sub(1, Ordering::SeqCst);
                        Ok(v)
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        Err(RecvTimeoutError::Timeout)
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                        Err(RecvTimeoutError::Disconnected)
                    }
                },
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            if let Mode::Managed(rt, tid) = runtime::mode() {
                rt.ensure_chan(chan_id(&self.core), &self.core);
                let out = rt.yield_op(tid, Op::TryRecv { ch: chan_id(&self.core) });
                return match out {
                    Outcome::Recv(RecvOutcome::Msg) => Ok(self.take_granted_msg()),
                    Outcome::Recv(RecvOutcome::Empty) => Err(TryRecvError::Empty),
                    Outcome::Recv(RecvOutcome::Disconnected) => Err(TryRecvError::Disconnected),
                    other => unreachable!("try_recv resolved as {other:?}"),
                };
            }
            match self.inner.try_recv() {
                Ok(v) => {
                    self.core.len.fetch_sub(1, Ordering::SeqCst);
                    Ok(v)
                }
                Err(crossbeam::channel::TryRecvError::Empty) => Err(TryRecvError::Empty),
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    Err(TryRecvError::Disconnected)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Scoped spawning and sleeping as schedulable transitions.
pub mod thread {
    use super::*;

    /// Sleeps on the virtual clock (a no-op during abort: the virtual clock
    /// is already past every deadline).
    pub fn sleep(duration: Duration) {
        match runtime::mode() {
            Mode::Managed(rt, tid) => {
                let ns = duration.as_nanos().min(u64::MAX as u128) as u64;
                rt.yield_op(tid, Op::Sleep { ns });
            }
            Mode::Aborting => {}
            Mode::Unmanaged => std::thread::sleep(duration),
        }
    }

    /// A scope wrapper whose spawns register with the model. At scope end
    /// every spawned thread is model-joined (an always-recorded, never
    /// branching transition) *before* `std`'s implicit join, so the
    /// controller never waits on a join it cannot see.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        spawned: std::sync::Mutex<Vec<Tid>>,
    }

    /// Join handle for a scoped thread; joining is a transition enabled only
    /// once the target has finished.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        target: Option<Tid>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            match runtime::mode() {
                Mode::Managed(rt, tid) => {
                    let out = rt.yield_op(tid, Op::Spawn);
                    let Outcome::SpawnedTid(child) = out else {
                        unreachable!("spawn resolved as {out:?}");
                    };
                    self.spawned.lock().unwrap_or_else(PoisonError::into_inner).push(child);
                    let rt2 = Arc::clone(&rt);
                    let inner = self.inner.spawn(move || {
                        runtime::set_tid(child);
                        rt2.wait_for_start(child);
                        let result = catch_unwind(AssertUnwindSafe(f));
                        rt2.thread_finished(child, result.is_err());
                        match result {
                            Ok(v) => v,
                            Err(payload) => resume_unwind(payload),
                        }
                    });
                    ScopedJoinHandle { inner, target: Some(child) }
                }
                _ => ScopedJoinHandle { inner: self.inner.spawn(f), target: None },
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            if let (Some(target), Mode::Managed(rt, tid)) = (self.target, runtime::mode()) {
                rt.yield_op(tid, Op::Join { target });
            }
            self.inner.join()
        }

        /// Whether the thread has finished.
        pub fn is_finished(&self) -> bool {
            self.inner.is_finished()
        }
    }

    /// Scoped threads (mirrors `std::thread::scope` with the facade's
    /// [`Scope`]). The closure signature is relaxed to a plain reference so
    /// the same caller code compiles against both personalities.
    pub fn scope<'env, F, T>(f: F) -> T
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
    {
        std::thread::scope(|inner| {
            let wrapper = Scope { inner, spawned: std::sync::Mutex::new(Vec::new()) };
            let result = catch_unwind(AssertUnwindSafe(|| f(&wrapper)));
            // Model-join every spawned thread (idempotent if the closure
            // already joined them: Join carries no accesses, so it never
            // branches the exploration) so the std implicit join below can
            // only run after each child's final transition.
            if let Mode::Managed(rt, tid) = runtime::mode() {
                let spawned =
                    wrapper.spawned.lock().unwrap_or_else(PoisonError::into_inner).clone();
                for child in spawned {
                    rt.yield_op(tid, Op::Join { target: child });
                }
            }
            match result {
                Ok(v) => v,
                Err(payload) => resume_unwind(payload),
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Time
// ---------------------------------------------------------------------------

/// Virtual-clock time sources.
pub mod time {
    use super::runtime;
    use std::time::Duration;

    /// A point on the model's virtual clock (real monotonic time when no
    /// model is active).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub struct Instant {
        ns: u64,
    }

    impl Instant {
        /// The current (virtual) time.
        pub fn now() -> Self {
            Instant { ns: runtime::now_ns() }
        }

        /// Time elapsed since this instant.
        pub fn elapsed(&self) -> Duration {
            Duration::from_nanos(runtime::now_ns().saturating_sub(self.ns))
        }

        /// Time between `earlier` and this instant (saturating at zero, like
        /// `std`'s behavior on monotonic clocks in practice).
        pub fn duration_since(&self, earlier: Instant) -> Duration {
            Duration::from_nanos(self.ns.saturating_sub(earlier.ns))
        }

        /// Saturating variant of [`Instant::duration_since`].
        pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
            self.duration_since(earlier)
        }
    }

    impl std::ops::Add<Duration> for Instant {
        type Output = Instant;
        fn add(self, rhs: Duration) -> Instant {
            Instant { ns: self.ns.saturating_add(rhs.as_nanos().min(u64::MAX as u128) as u64) }
        }
    }

    impl std::ops::Sub<Instant> for Instant {
        type Output = Duration;
        fn sub(self, rhs: Instant) -> Duration {
            self.duration_since(rhs)
        }
    }
}
