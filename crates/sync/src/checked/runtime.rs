//! The `mt_check` exploration runtime: a loom-style cooperative scheduler.
//!
//! Real OS threads run the real code under test, but every facade operation
//! first announces itself to this runtime and parks until the controller
//! (the thread inside [`crate::checked::model`]) schedules it — so exactly
//! one thread executes user code at any moment and the interleaving is fully
//! determined by the sequence of scheduling choices. The controller keeps a
//! *model* of every synchronization object (who owns which mutex, who waits
//! on which condvar, how many messages a channel holds) and only enables
//! transitions the real primitives would allow; the real primitive operation
//! is then performed by the scheduled thread, where it can no longer block
//! (mutual exclusion is already guaranteed by the serialization).
//!
//! Time is virtual: the clock advances only when no transition is enabled,
//! jumping straight to the earliest armed deadline (condvar `wait_for`,
//! `recv_timeout`, `sleep`). A `timer_fires` counter records every
//! timeout-driven wakeup — scenarios that should make progress purely
//! through notifications assert it stays zero, which is what catches a
//! dropped `notify_all` (functionally masked by timeout recovery, but not
//! silent here). No enabled transition *and* no armed timer is a deadlock.
//!
//! When a violation is found the execution is condemned: the runtime flips
//! into *abort* mode, the virtual clock jumps past every deadline, and all
//! primitives fall back to their real `std` behavior with waits capped at a
//! millisecond — every deadline-checked loop in the code under test then
//! drains through its own timeout path and the scenario's scoped threads
//! join normally.

use crate::explore::{Access, ChoiceKey, StepRecord};
use crate::vc::VectorClock;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError, Weak};
use std::time::Duration;

pub(crate) type Tid = usize;
pub(crate) type Addr = usize;

/// Wall-clock backstop for one scheduling decision: if the running thread
/// makes no progress for this long, the harness itself is stuck.
const STALL_BACKSTOP: Duration = Duration::from_secs(30);
/// Wall-clock backstop for draining a condemned execution.
const ABORT_BACKSTOP: Duration = Duration::from_secs(30);
/// Virtual clock value installed on abort: far past every plausible
/// deadline, so deadline-checked loops exit via their timeout paths.
const ABORT_CLOCK_NS: u64 = u64::MAX / 4;

/// How a blocked condvar wait ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WakeReason {
    Notified,
    TimedOut,
    Spurious,
}

/// A transition announced by a thread at a yield point.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// First transition of every thread: makes thread startup schedulable.
    Start,
    Lock {
        m: Addr,
    },
    Unlock {
        m: Addr,
    },
    /// Begin a condvar wait: atomically releases `m` and blocks.
    CondWait {
        cv: Addr,
        m: Addr,
        timeout_ns: Option<u64>,
    },
    /// Internal: a woken waiter re-acquiring the mutex (never announced by
    /// threads; installed by notify / timer-fire / spurious-wake effects).
    LockAfterWait {
        m: Addr,
        reason: WakeReason,
    },
    NotifyOne {
        cv: Addr,
    },
    NotifyAll {
        cv: Addr,
    },
    Send {
        ch: Addr,
    },
    Recv {
        ch: Addr,
        deadline: Option<u64>,
    },
    /// Internal: a `recv_timeout` whose deadline fired.
    RecvExpired {
        ch: Addr,
    },
    TryRecv {
        ch: Addr,
    },
    CellSet {
        c: Addr,
    },
    CellGet {
        c: Addr,
    },
    Sleep {
        ns: u64,
    },
    /// Internal: a sleeper whose deadline fired.
    WakeSleep,
    Spawn,
    Join {
        target: Tid,
    },
}

/// What the scheduled thread should do / return.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Outcome {
    Proceed,
    Wait(WakeReason),
    Recv(RecvOutcome),
    SpawnedTid(Tid),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecvOutcome {
    /// A message is available in the real queue.
    Msg,
    Disconnected,
    /// Timed out (for `recv_timeout`) or currently empty (for `try_recv`).
    Empty,
}

#[derive(Debug)]
enum Status {
    AtYield(Op),
    Running,
    BlockedCv { cv: Addr, m: Addr, deadline: Option<u64> },
    Sleeping { until: u64 },
    Finished,
}

struct ThreadState {
    status: Status,
    vc: VectorClock,
    outcome: Option<Outcome>,
}

#[derive(Default)]
struct MutexModel {
    owner: Option<Tid>,
    vc: VectorClock,
}

#[derive(Default)]
struct CvModel {
    waiters: Vec<Tid>,
}

/// Shared identity + liveness counters for one channel, owned by its
/// endpoint handles (survives model-entry lifecycle and address reuse).
pub(crate) struct ChanCore {
    pub(crate) senders: AtomicUsize,
    pub(crate) receiver_alive: AtomicBool,
    pub(crate) len: AtomicUsize,
}

impl ChanCore {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ChanCore {
            senders: AtomicUsize::new(1),
            receiver_alive: AtomicBool::new(true),
            len: AtomicUsize::new(0),
        })
    }
}

struct ChanModel {
    core: Weak<ChanCore>,
    /// Sender clocks for queued messages (receive joins the sender's clock).
    queue: VecDeque<VectorClock>,
}

#[derive(Default)]
struct CellModel {
    setter: Option<VectorClock>,
}

struct State {
    threads: Vec<ThreadState>,
    running: Option<Tid>,
    clock_ns: u64,
    timer_fires: u64,
    spurious_budget: u32,
    aborting: bool,
    trace: Vec<StepRecord>,
    prefix: Vec<ChoiceKey>,
    prefix_pos: usize,
    violations: Vec<String>,
    max_steps: usize,
    mutexes: HashMap<Addr, MutexModel>,
    condvars: HashMap<Addr, CvModel>,
    channels: HashMap<Addr, ChanModel>,
    cells: HashMap<Addr, CellModel>,
}

/// Results of one execution, handed back to the model loop.
pub(crate) struct RunResult {
    pub trace: Vec<StepRecord>,
    pub violations: Vec<String>,
    pub timer_fires: u64,
}

/// The per-execution scheduler. One instance per explored execution.
pub(crate) struct Runtime {
    state: StdMutex<State>,
    cv: StdCondvar,
}

// ---------------------------------------------------------------------------
// Global registration: which runtime (if any) governs this process right
// now, and which model-thread id the current OS thread carries.
// ---------------------------------------------------------------------------

static CURRENT: StdMutex<Option<Arc<Runtime>>> = StdMutex::new(None);

/// Message of the most recent panic observed by the model's quiet panic
/// hook (installed by `model::check` for the duration of a run). Folded
/// into the root-panic violation so the report names the failed assertion,
/// not just the schedule.
static LAST_PANIC: StdMutex<Option<String>> = StdMutex::new(None);

pub(crate) fn record_panic(message: String) {
    // Keep the *first* panic since the last take: cascades (a rank panic
    // unwinding into a root join panic into condemned-drain panics) all
    // trace back to it.
    let mut slot = LAST_PANIC.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if slot.is_none() {
        *slot = Some(message);
    }
}

pub(crate) fn take_last_panic() -> Option<String> {
    LAST_PANIC.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take()
}

thread_local! {
    static TID: std::cell::Cell<Option<Tid>> = const { std::cell::Cell::new(None) };
}

pub(crate) fn set_tid(tid: Tid) {
    TID.with(|t| t.set(Some(tid)));
}

/// How the current OS thread relates to the model.
pub(crate) enum Mode {
    /// Scheduled by an active runtime: every op is a transition.
    Managed(Arc<Runtime>, Tid),
    /// A runtime exists but the execution is condemned: use real primitives
    /// with waits capped so timeout paths drain.
    Aborting,
    /// No runtime (real `cargo test` under the cfg, or the controller):
    /// plain `std` behavior.
    Unmanaged,
}

pub(crate) fn mode() -> Mode {
    let rt = { CURRENT.lock().unwrap_or_else(PoisonError::into_inner).clone() };
    match (rt, TID.with(|t| t.get())) {
        // Abort mode applies even to threads with no model id (spawned
        // after the abort began): they too must use capped waits so the
        // condemned execution drains.
        (Some(rt), _) if rt.is_aborting() => Mode::Aborting,
        (Some(rt), Some(tid)) => Mode::Managed(rt, tid),
        _ => Mode::Unmanaged,
    }
}

/// Virtual-now if a runtime is installed (whether or not this thread is
/// managed), real monotonic nanos otherwise.
pub(crate) fn now_ns() -> u64 {
    let rt = { CURRENT.lock().unwrap_or_else(PoisonError::into_inner).clone() };
    match rt {
        Some(rt) => rt.clock_ns(),
        None => {
            static EPOCH: std::sync::OnceLock<std::time::Instant> = std::sync::OnceLock::new();
            let epoch = *EPOCH.get_or_init(std::time::Instant::now);
            epoch.elapsed().as_nanos() as u64
        }
    }
}

impl Runtime {
    pub(crate) fn new(prefix: Vec<ChoiceKey>, max_steps: usize, spurious_budget: u32) -> Arc<Self> {
        let rt = Arc::new(Runtime {
            state: StdMutex::new(State {
                threads: Vec::new(),
                running: None,
                clock_ns: 0,
                timer_fires: 0,
                spurious_budget,
                aborting: false,
                trace: Vec::new(),
                prefix,
                prefix_pos: 0,
                violations: Vec::new(),
                max_steps,
                mutexes: HashMap::new(),
                condvars: HashMap::new(),
                channels: HashMap::new(),
                cells: HashMap::new(),
            }),
            cv: StdCondvar::new(),
        });
        // Root thread (tid 0): starts like every other thread, via Start.
        rt.lock().threads.push(ThreadState {
            status: Status::AtYield(Op::Start),
            vc: VectorClock::new(),
            outcome: None,
        });
        rt
    }

    pub(crate) fn install(self: &Arc<Self>) {
        *CURRENT.lock().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(self));
    }

    pub(crate) fn uninstall() {
        *CURRENT.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn is_aborting(&self) -> bool {
        self.lock().aborting
    }

    pub(crate) fn clock_ns(&self) -> u64 {
        self.lock().clock_ns
    }

    /// Ensures a channel model entry exists and is current (an address can
    /// be reused by a new channel after its predecessor dropped; the dead
    /// `Weak` detects that).
    pub(crate) fn ensure_chan(&self, addr: Addr, core: &Arc<ChanCore>) {
        let mut st = self.lock();
        let stale = st.channels.get(&addr).is_some_and(|c| c.core.upgrade().is_none());
        if stale {
            st.channels.remove(&addr);
        }
        st.channels
            .entry(addr)
            .or_insert_with(|| ChanModel { core: Arc::downgrade(core), queue: VecDeque::new() });
    }

    // -----------------------------------------------------------------
    // Thread side
    // -----------------------------------------------------------------

    /// Announces `op` and parks until the controller schedules it. Returns
    /// the outcome the scheduled transition produced.
    pub(crate) fn yield_op(&self, tid: Tid, op: Op) -> Outcome {
        let mut st = self.lock();
        if st.aborting {
            return Self::permissive(&mut st, op);
        }
        debug_assert_eq!(st.running, Some(tid), "yield from a thread that was not scheduled");
        st.running = None;
        st.threads[tid].status = Status::AtYield(op);
        self.cv.notify_all();
        loop {
            if let Some(out) = st.threads[tid].outcome.take() {
                return out;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Parks a freshly spawned thread until its `Start` transition runs.
    pub(crate) fn wait_for_start(&self, tid: Tid) {
        let mut st = self.lock();
        loop {
            if st.aborting || st.threads[tid].outcome.take().is_some() {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks a thread finished (normally or by panic) and releases the
    /// schedule.
    pub(crate) fn thread_finished(&self, tid: Tid, panicked: bool) {
        let mut st = self.lock();
        st.threads[tid].status = Status::Finished;
        if st.running == Some(tid) {
            st.running = None;
        }
        if panicked && !st.aborting && tid == 0 {
            // A rank-thread panic is a legitimate modeled event (rank-death
            // scenarios catch it); an escaped panic on the scenario root is
            // a failed scenario assertion.
            let sched = schedule_string(&st.trace);
            let why = take_last_panic().map(|m| format!(" ({m})")).unwrap_or_default();
            st.violations.push(format!("scenario panicked{why} under schedule [{sched}]"));
            Self::begin_abort(&mut st);
        }
        self.cv.notify_all();
    }

    /// Abort-mode outcome: permissive enough that real primitives with
    /// capped waits drain the execution. Spawns still allocate a real slot.
    fn permissive(st: &mut State, op: Op) -> Outcome {
        match op {
            Op::CondWait { .. } | Op::LockAfterWait { .. } => Outcome::Wait(WakeReason::TimedOut),
            Op::Recv { .. } | Op::RecvExpired { .. } | Op::TryRecv { .. } => {
                Outcome::Recv(RecvOutcome::Empty)
            }
            Op::Spawn => {
                let tid = st.threads.len();
                st.threads.push(ThreadState {
                    status: Status::Running,
                    vc: VectorClock::new(),
                    outcome: None,
                });
                Outcome::SpawnedTid(tid)
            }
            _ => Outcome::Proceed,
        }
    }

    // -----------------------------------------------------------------
    // Controller side
    // -----------------------------------------------------------------

    /// Runs the execution to completion (all threads finished), making every
    /// scheduling decision. Returns the trace, violations, and timer count.
    pub(crate) fn controller_run(&self) -> RunResult {
        let mut st = self.lock();
        loop {
            // Wait for quiescence: nobody executing user code.
            while st.running.is_some() && !st.aborting {
                let (guard, timeout) = self
                    .cv
                    .wait_timeout(st, STALL_BACKSTOP)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
                if timeout.timed_out() && st.running.is_some() {
                    let tid = st.running.unwrap();
                    st.violations.push(format!(
                        "harness stall: thread t{tid} held the schedule for {}s without \
                         reaching a yield point (raw primitive held across a facade op?)",
                        STALL_BACKSTOP.as_secs()
                    ));
                    Self::begin_abort(&mut st);
                }
            }
            if st.aborting {
                st = self.drain_abort(st);
                break;
            }
            if st.threads.iter().all(|t| matches!(t.status, Status::Finished)) {
                break;
            }

            let enabled = Self::enabled_keys(&st);
            if enabled.is_empty() {
                if let Some(t) = Self::earliest_timer(&st) {
                    // Strictly advance even when the deadline equals the
                    // current instant (a zero-remaining re-wait), so an
                    // exact-boundary `wait_for` observes elapsed time grow
                    // and terminates instead of livelocking the clock.
                    st.clock_ns = t.max(st.clock_ns + 1);
                    Self::fire_timers(&mut st);
                    continue;
                }
                let who = Self::describe_blocked(&st);
                let sched = schedule_string(&st.trace);
                st.violations.push(format!(
                    "deadlock: no enabled transition and no armed timer; blocked: {who}; \
                     schedule [{sched}]"
                ));
                Self::begin_abort(&mut st);
                continue;
            }
            if st.trace.len() >= st.max_steps {
                let budget = st.max_steps;
                st.violations.push(format!(
                    "step budget exceeded ({budget} transitions): livelock or budget too small"
                ));
                Self::begin_abort(&mut st);
                continue;
            }

            let key = if st.prefix_pos < st.prefix.len() {
                let k = st.prefix[st.prefix_pos];
                st.prefix_pos += 1;
                if !enabled.contains(&k) {
                    st.violations.push(format!(
                        "replay divergence: schedule prefix wants {k} but enabled set is {:?}",
                        enabled.iter().map(|e| e.to_string()).collect::<Vec<_>>()
                    ));
                    Self::begin_abort(&mut st);
                    continue;
                }
                k
            } else {
                enabled[0]
            };

            let accesses = Self::accesses_for(&st, key);
            st.trace.push(StepRecord { key, alternatives: enabled, accesses });
            Self::apply(&mut st, key);
            self.cv.notify_all();
        }
        RunResult {
            trace: std::mem::take(&mut st.trace),
            violations: std::mem::take(&mut st.violations),
            timer_fires: st.timer_fires,
        }
    }

    /// Condemns the execution: virtual clock past every deadline, every
    /// parked thread released with a permissive outcome, primitives fall
    /// back to real behavior (see [`mode`]).
    fn begin_abort(st: &mut State) {
        if st.aborting {
            return;
        }
        st.aborting = true;
        st.clock_ns = ABORT_CLOCK_NS;
        st.running = None;
        for cv in st.condvars.values_mut() {
            cv.waiters.clear();
        }
        for tid in 0..st.threads.len() {
            enum Plan {
                Op(Op),
                Wait,
                Proceed,
            }
            let plan = match &st.threads[tid].status {
                Status::AtYield(op) => Plan::Op(op.clone()),
                Status::BlockedCv { .. } => Plan::Wait,
                Status::Sleeping { .. } => Plan::Proceed,
                Status::Running | Status::Finished => continue,
            };
            let outcome = match plan {
                Plan::Op(op) => Self::permissive(st, op),
                Plan::Wait => Outcome::Wait(WakeReason::TimedOut),
                Plan::Proceed => Outcome::Proceed,
            };
            let t = &mut st.threads[tid];
            t.status = Status::Running;
            t.outcome = Some(outcome);
        }
    }

    /// Waits (bounded) for every thread to finish after an abort.
    fn drain_abort<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, State>,
    ) -> std::sync::MutexGuard<'a, State> {
        self.cv.notify_all();
        let wall = std::time::Instant::now();
        loop {
            if st.threads.iter().all(|t| matches!(t.status, Status::Finished)) {
                return st;
            }
            if wall.elapsed() > ABORT_BACKSTOP {
                // Scoped threads cannot be leaked; if the condemned
                // execution will not drain, the process cannot continue.
                eprintln!(
                    "mt-sync: condemned execution failed to drain within {}s; aborting process. \
                     violations: {:?}",
                    ABORT_BACKSTOP.as_secs(),
                    st.violations
                );
                std::process::exit(3);
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    fn op_enabled(st: &State, op: &Op) -> bool {
        match op {
            Op::Lock { m } | Op::LockAfterWait { m, .. } => {
                st.mutexes.get(m).is_none_or(|mm| mm.owner.is_none())
            }
            Op::Recv { ch, .. } => match st.channels.get(ch).and_then(|c| c.core.upgrade()) {
                Some(core) => {
                    core.len.load(Ordering::SeqCst) > 0 || core.senders.load(Ordering::SeqCst) == 0
                }
                None => true, // defensively schedulable; resolves as disconnected
            },
            Op::Join { target } => matches!(st.threads[*target].status, Status::Finished),
            _ => true,
        }
    }

    fn enabled_keys(st: &State) -> Vec<ChoiceKey> {
        let mut keys = Vec::new();
        for (tid, t) in st.threads.iter().enumerate() {
            match &t.status {
                Status::AtYield(op) if Self::op_enabled(st, op) => {
                    keys.push(ChoiceKey { tid, spurious: false });
                }
                Status::BlockedCv { .. } if st.spurious_budget > 0 => {
                    keys.push(ChoiceKey { tid, spurious: true });
                }
                _ => {}
            }
        }
        keys.sort();
        keys
    }

    fn earliest_timer(st: &State) -> Option<u64> {
        let mut earliest: Option<u64> = None;
        let mut bump = |d: u64| earliest = Some(earliest.map_or(d, |e| e.min(d)));
        for t in &st.threads {
            match &t.status {
                Status::BlockedCv { deadline: Some(d), .. } => bump(*d),
                Status::Sleeping { until } => bump(*until),
                Status::AtYield(Op::Recv { deadline: Some(d), .. }) => bump(*d),
                _ => {}
            }
        }
        earliest
    }

    fn fire_timers(st: &mut State) {
        enum Fire {
            Cv { cv: Addr, m: Addr },
            Sleep,
            Recv { ch: Addr },
        }
        let clock = st.clock_ns;
        let mut fires: Vec<(Tid, Fire)> = Vec::new();
        for (tid, t) in st.threads.iter().enumerate() {
            match &t.status {
                Status::BlockedCv { cv, m, deadline: Some(d) } if *d <= clock => {
                    fires.push((tid, Fire::Cv { cv: *cv, m: *m }));
                }
                Status::Sleeping { until } if *until <= clock => fires.push((tid, Fire::Sleep)),
                Status::AtYield(Op::Recv { ch, deadline: Some(d) }) if *d <= clock => {
                    // Only expire a receive that could not complete; one
                    // with a message or disconnect available stays as-is.
                    let probe = Op::Recv { ch: *ch, deadline: None };
                    if !Self::op_enabled(st, &probe) {
                        fires.push((tid, Fire::Recv { ch: *ch }));
                    }
                }
                _ => {}
            }
        }
        for (tid, fire) in fires {
            match fire {
                Fire::Cv { cv, m } => {
                    if let Some(cvm) = st.condvars.get_mut(&cv) {
                        cvm.waiters.retain(|&w| w != tid);
                    }
                    st.threads[tid].status =
                        Status::AtYield(Op::LockAfterWait { m, reason: WakeReason::TimedOut });
                    st.timer_fires += 1;
                }
                Fire::Sleep => {
                    st.threads[tid].status = Status::AtYield(Op::WakeSleep);
                }
                Fire::Recv { ch } => {
                    st.threads[tid].status = Status::AtYield(Op::RecvExpired { ch });
                    st.timer_fires += 1;
                }
            }
        }
    }

    fn describe_blocked(st: &State) -> String {
        let mut parts = Vec::new();
        for (tid, t) in st.threads.iter().enumerate() {
            let desc = match &t.status {
                Status::AtYield(op) => format!("t{tid} at {op:?} (disabled)"),
                Status::BlockedCv { cv, .. } => format!("t{tid} waiting on condvar {cv:#x}"),
                Status::Sleeping { until } => format!("t{tid} sleeping until {until}ns"),
                Status::Running => format!("t{tid} running"),
                Status::Finished => continue,
            };
            parts.push(desc);
        }
        parts.join(", ")
    }

    fn accesses_for(st: &State, key: ChoiceKey) -> Vec<Access> {
        let t = &st.threads[key.tid];
        if key.spurious {
            if let Status::BlockedCv { cv, .. } = &t.status {
                return vec![Access { obj: *cv as u64, write: true }];
            }
            return Vec::new();
        }
        let Status::AtYield(op) = &t.status else { return Vec::new() };
        match op {
            // Conflicts must hold between *co-enabled* transitions for the
            // backtrack points to land where a reordering is possible. For
            // locks that means acquire-vs-acquire: a release (and the
            // release half of a condvar wait) can never be co-enabled with
            // any other operation on the same mutex — the releaser holds
            // it — so recording an access for it would only mask the
            // acquire-acquire conflict as "last conflicting step" and hide
            // schedules (e.g. the AB-BA deadlock) from the exploration.
            Op::Lock { m } | Op::LockAfterWait { m, .. } => {
                vec![Access { obj: *m as u64, write: true }]
            }
            Op::Unlock { .. } => Vec::new(),
            Op::CondWait { cv, .. } => vec![Access { obj: *cv as u64, write: true }],
            Op::NotifyOne { cv } | Op::NotifyAll { cv } => {
                vec![Access { obj: *cv as u64, write: true }]
            }
            Op::Send { ch } | Op::Recv { ch, .. } | Op::RecvExpired { ch } | Op::TryRecv { ch } => {
                vec![Access { obj: *ch as u64, write: true }]
            }
            Op::CellSet { c } => vec![Access { obj: *c as u64, write: true }],
            Op::CellGet { c } => vec![Access { obj: *c as u64, write: false }],
            Op::Start | Op::Sleep { .. } | Op::WakeSleep | Op::Spawn | Op::Join { .. } => {
                Vec::new()
            }
        }
    }

    /// Grants the transition: records effects in the model, hands the
    /// scheduled thread its outcome, and (for resuming transitions) lets it
    /// run to its next yield point.
    fn apply(st: &mut State, key: ChoiceKey) {
        let tid = key.tid;
        st.threads[tid].vc.tick(tid);

        if key.spurious {
            let (cv, m) = match &st.threads[tid].status {
                Status::BlockedCv { cv, m, .. } => (*cv, *m),
                _ => unreachable!("spurious wake of a thread not blocked on a condvar"),
            };
            if let Some(cvm) = st.condvars.get_mut(&cv) {
                cvm.waiters.retain(|&w| w != tid);
            }
            st.spurious_budget -= 1;
            st.threads[tid].status =
                Status::AtYield(Op::LockAfterWait { m, reason: WakeReason::Spurious });
            return;
        }

        let Status::AtYield(op) = std::mem::replace(&mut st.threads[tid].status, Status::Running)
        else {
            unreachable!("scheduled a thread that was not at a yield point");
        };
        match op {
            Op::Start | Op::WakeSleep => Self::grant(st, tid, Outcome::Proceed),
            Op::Lock { m } => {
                let mm = st.mutexes.entry(m).or_default();
                mm.owner = Some(tid);
                let obj_vc = mm.vc.clone();
                st.threads[tid].vc.join(&obj_vc);
                Self::grant(st, tid, Outcome::Proceed);
            }
            Op::Unlock { m } => {
                let vc = st.threads[tid].vc.clone();
                let mm = st.mutexes.entry(m).or_default();
                mm.owner = None;
                mm.vc = vc;
                Self::grant(st, tid, Outcome::Proceed);
            }
            Op::CondWait { cv, m, timeout_ns } => {
                // Atomic release-and-block: no grant — the thread stays
                // parked until a notify, timer, or spurious wake installs
                // its LockAfterWait.
                let vc = st.threads[tid].vc.clone();
                let mm = st.mutexes.entry(m).or_default();
                mm.owner = None;
                mm.vc = vc;
                st.condvars.entry(cv).or_default().waiters.push(tid);
                let deadline = timeout_ns.map(|t| st.clock_ns.saturating_add(t));
                st.threads[tid].status = Status::BlockedCv { cv, m, deadline };
            }
            Op::LockAfterWait { m, reason } => {
                let mm = st.mutexes.entry(m).or_default();
                mm.owner = Some(tid);
                let obj_vc = mm.vc.clone();
                st.threads[tid].vc.join(&obj_vc);
                Self::grant(st, tid, Outcome::Wait(reason));
            }
            Op::NotifyOne { cv } | Op::NotifyAll { cv } => {
                let all = matches!(op, Op::NotifyAll { .. });
                let notifier_vc = st.threads[tid].vc.clone();
                let mut waiters = st.condvars.entry(cv).or_default().waiters.clone();
                waiters.sort_unstable();
                let woken: Vec<Tid> =
                    if all { waiters } else { waiters.into_iter().take(1).collect() };
                if let Some(cvm) = st.condvars.get_mut(&cv) {
                    cvm.waiters.retain(|w| !woken.contains(w));
                }
                for w in woken {
                    let m = match &st.threads[w].status {
                        Status::BlockedCv { m, .. } => *m,
                        _ => unreachable!("condvar waiter list out of sync"),
                    };
                    st.threads[w].vc.join(&notifier_vc);
                    st.threads[w].status =
                        Status::AtYield(Op::LockAfterWait { m, reason: WakeReason::Notified });
                }
                Self::grant(st, tid, Outcome::Proceed);
            }
            Op::Send { ch } => {
                let vc = st.threads[tid].vc.clone();
                if let Some(cm) = st.channels.get_mut(&ch) {
                    let alive =
                        cm.core.upgrade().is_some_and(|c| c.receiver_alive.load(Ordering::SeqCst));
                    if alive {
                        cm.queue.push_back(vc);
                    }
                }
                Self::grant(st, tid, Outcome::Proceed);
            }
            Op::Recv { ch, .. } | Op::TryRecv { ch } => {
                let decision = match st.channels.get_mut(&ch) {
                    Some(cm) => match cm.core.upgrade() {
                        Some(core) if core.len.load(Ordering::SeqCst) > 0 => {
                            // A pre-model message may have no recorded clock.
                            let msg_vc = cm.queue.pop_front().unwrap_or_default();
                            Some(msg_vc)
                        }
                        Some(core) if core.senders.load(Ordering::SeqCst) == 0 => None,
                        Some(_) => {
                            Self::grant(st, tid, Outcome::Recv(RecvOutcome::Empty));
                            return;
                        }
                        None => None,
                    },
                    None => None,
                };
                match decision {
                    Some(msg_vc) => {
                        st.threads[tid].vc.join(&msg_vc);
                        Self::grant(st, tid, Outcome::Recv(RecvOutcome::Msg));
                    }
                    None => Self::grant(st, tid, Outcome::Recv(RecvOutcome::Disconnected)),
                }
            }
            Op::RecvExpired { .. } => {
                Self::grant(st, tid, Outcome::Recv(RecvOutcome::Empty));
            }
            Op::CellSet { c } => {
                let vc = st.threads[tid].vc.clone();
                let cell = st.cells.entry(c).or_default();
                if cell.setter.is_none() {
                    cell.setter = Some(vc);
                }
                Self::grant(st, tid, Outcome::Proceed);
            }
            Op::CellGet { c } => {
                let setter = st.cells.entry(c).or_default().setter.clone();
                if let Some(sv) = setter {
                    if !sv.le(&st.threads[tid].vc) {
                        // Grant first so the condemned reader is not left
                        // parked without an outcome.
                        Self::grant(st, tid, Outcome::Proceed);
                        let sched = schedule_string(&st.trace);
                        st.violations.push(format!(
                            "happens-before race: t{tid} read once-cell {c:#x} without an HB \
                             edge from its setter; schedule [{sched}]"
                        ));
                        Self::begin_abort(st);
                        return;
                    }
                    st.threads[tid].vc.join(&sv);
                }
                Self::grant(st, tid, Outcome::Proceed);
            }
            Op::Sleep { ns } => {
                st.threads[tid].status = Status::Sleeping { until: st.clock_ns.saturating_add(ns) };
            }
            Op::Spawn => {
                let child = st.threads.len();
                let mut vc = st.threads[tid].vc.clone();
                vc.tick(child);
                st.threads.push(ThreadState {
                    status: Status::AtYield(Op::Start),
                    vc,
                    outcome: None,
                });
                Self::grant(st, tid, Outcome::SpawnedTid(child));
            }
            Op::Join { target } => {
                let target_vc = st.threads[target].vc.clone();
                st.threads[tid].vc.join(&target_vc);
                Self::grant(st, tid, Outcome::Proceed);
            }
        }
    }

    fn grant(st: &mut State, tid: Tid, outcome: Outcome) {
        st.threads[tid].status = Status::Running;
        st.threads[tid].outcome = Some(outcome);
        st.running = Some(tid);
    }
}

/// Human-readable schedule (for violation repro messages).
pub(crate) fn schedule_string(trace: &[StepRecord]) -> String {
    trace.iter().map(|s| s.key.to_string()).collect::<Vec<_>>().join(" ")
}
