//! Vector clocks for the happens-before relation maintained by the
//! `mt_check` runtime.
//!
//! Each model-checked thread carries a [`VectorClock`]; every synchronization
//! object (mutex, condvar, channel message, once-cell) carries the clock of
//! the event that released/sent/set it. Acquiring joins the object's clock
//! into the acquiring thread's, establishing the edge. An access is
//! *happens-before ordered* after an event iff the event's clock is `≤` the
//! accessor's clock — the race detector flags reads whose observed write is
//! not so ordered.

/// A vector clock: one logical-time slot per thread id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    slots: Vec<u64>,
}

impl VectorClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> Self {
        VectorClock { slots: Vec::new() }
    }

    /// This clock's component for `tid`.
    pub fn get(&self, tid: usize) -> u64 {
        self.slots.get(tid).copied().unwrap_or(0)
    }

    /// Advances `tid`'s component — call when thread `tid` performs an event.
    pub fn tick(&mut self, tid: usize) {
        if self.slots.len() <= tid {
            self.slots.resize(tid + 1, 0);
        }
        self.slots[tid] += 1;
    }

    /// Component-wise maximum: afterwards everything ordered before `other`
    /// is also ordered before `self`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.slots.len() < other.slots.len() {
            self.slots.resize(other.slots.len(), 0);
        }
        for (s, o) in self.slots.iter_mut().zip(&other.slots) {
            *s = (*s).max(*o);
        }
    }

    /// `true` iff `self` happens-before-or-equals `other` (component-wise ≤).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.slots.iter().enumerate().all(|(tid, &v)| v <= other.get(tid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clocks_are_ordered_both_ways() {
        let a = VectorClock::new();
        let b = VectorClock::new();
        assert!(a.le(&b) && b.le(&a));
    }

    #[test]
    fn tick_and_join_establish_happens_before() {
        // Thread 0 events, then a release/acquire edge into thread 1.
        let mut t0 = VectorClock::new();
        t0.tick(0);
        t0.tick(0);
        let released = t0.clone(); // object clock at release
        let mut t1 = VectorClock::new();
        t1.tick(1);
        assert!(!released.le(&t1), "no edge yet: release not ordered before t1");
        t1.join(&released); // acquire
        assert!(released.le(&t1), "after acquire the release happens-before t1");
        assert_eq!(t1.get(0), 2);
        assert_eq!(t1.get(1), 1);
    }

    #[test]
    fn concurrent_clocks_are_unordered() {
        let mut a = VectorClock::new();
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(1);
        assert!(!a.le(&b), "concurrent events must not be HB-ordered");
        assert!(!b.le(&a), "concurrent events must not be HB-ordered");
    }

    #[test]
    fn race_detector_shape_unsynchronized_write_is_flagged() {
        // The exact check the runtime performs on a once-cell read: the
        // setter's clock must be ≤ the reader's. Without an acquire join
        // the read is racy; with it, ordered.
        let mut setter = VectorClock::new();
        setter.tick(0);
        let mut reader = VectorClock::new();
        reader.tick(1);
        assert!(!setter.le(&reader), "racy read must be detected");
        let mut mutex_obj = VectorClock::new();
        mutex_obj.join(&setter); // setter releases a mutex after the write
        reader.join(&mutex_obj); // reader acquires it before the read
        assert!(setter.le(&reader), "mutex edge orders the read");
    }
}
