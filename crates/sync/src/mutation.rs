//! Seeded-bug registry for checker self-validation (`mt_check` only).
//!
//! The mutation harness proves mt-check actually catches the bug classes it
//! claims to: each named mutation re-introduces a classic concurrency bug
//! into the real code under check, and the harness asserts the checker
//! reports a violation. The hooks live where the bug would live:
//!
//! * `drop-notify` — [`crate::Condvar::notify_all`] becomes a no-op (the
//!   lost-wakeup bug; caught by the quiescent-progress oracle).
//! * `skip-recheck` — a rendezvous wait site skips its predicate re-check
//!   loop (caught when a spurious wakeup is injected).
//! * `skip-epoch-check` — rendezvous matching ignores the call epoch
//!   (caught by the cross-epoch straggler scenario).
//!
//! Arming is process-global and scenarios run serially under the model
//! guard, so a harness arms one mutation, runs the scenario grid, and
//! disarms.

use std::sync::{Mutex, PoisonError};

static ARMED: Mutex<Option<&'static str>> = Mutex::new(None);

/// Every mutation the self-validation harness can arm.
pub const ALL: &[&str] = &["drop-notify", "skip-recheck", "skip-epoch-check"];

/// Arms `name` (one mutation at a time; replaces any previous).
/// Unknown names panic: a typo here would silently validate nothing.
pub fn arm(name: &str) {
    let known = ALL.iter().find(|&&m| m == name).copied();
    let known = known.unwrap_or_else(|| panic!("unknown mutation {name:?} (known: {ALL:?})"));
    *ARMED.lock().unwrap_or_else(PoisonError::into_inner) = Some(known);
}

/// Disarms whatever is armed.
pub fn disarm() {
    *ARMED.lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Whether `name` is currently armed (checked at the mutation's hook site).
pub fn armed(name: &str) -> bool {
    *ARMED.lock().unwrap_or_else(PoisonError::into_inner) == Some(name)
}
