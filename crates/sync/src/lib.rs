//! # mt-sync
//!
//! The workspace's synchronization facade. Every `Mutex` / `Condvar` /
//! channel / scoped-spawn / `Instant` used by the concurrency layer
//! (`mt-collectives` rendezvous, `mt-kernels` overlap drivers, `mt-fault`
//! plans) is imported from here instead of from `parking_lot` / `crossbeam` /
//! `std::sync` directly (the `raw-sync-primitive` lint enforces this).
//!
//! Two personalities, selected at compile time:
//!
//! * **Real builds** (the default): pure re-exports of the vendored
//!   `parking_lot` / `crossbeam` / `std` primitives — zero overhead by
//!   construction, verified by `sync_overhead_bench` against the pre-facade
//!   baseline in `bench_gate --sync`.
//! * **Model checking** (`RUSTFLAGS="--cfg mt_check"`, like loom's
//!   `--cfg loom`): instrumented primitives driven by the deterministic
//!   exploration scheduler in [`mod@checked`]. Every sync operation becomes a
//!   schedulable transition, `wait_for` timeouts are virtual-time events
//!   (not wall clock), and a vector-clock happens-before relation is
//!   maintained for race checking. `crates/check` (mt-check) runs the real
//!   collectives/overlap code under this scheduler and explores all
//!   interleavings of small worlds with DPOR pruning.
//!
//! A cfg rather than a cargo feature keeps the instrumentation out of normal
//! builds entirely: features unify across a workspace build graph, cfgs do
//! not. Under `mt_check` without an active model (e.g. plain `cargo test`
//! with the cfg on), the instrumented primitives fall back to their real
//! `std` behavior, so the whole workspace still works.
//!
//! The exploration bookkeeping ([`explore`], DPOR backtracking) and the
//! vector clocks ([`vc`]) are ordinary always-compiled modules with their
//! own unit tests — only the runtime that drives real threads is gated.

#![warn(missing_docs)]

pub mod explore;
pub mod vc;

#[cfg(not(mt_check))]
mod real;
#[cfg(not(mt_check))]
pub use real::*;

#[cfg(mt_check)]
pub mod checked;
#[cfg(mt_check)]
pub use checked::{
    channel, model, thread, time, Condvar, ModelOpts, ModelReport, Mutex, MutexGuard, OnceCell,
    RwLock, WaitTimeoutResult,
};
#[cfg(mt_check)]
pub mod mutation;
