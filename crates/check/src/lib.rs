//! mt-check: exhaustive small-world model checking for the concurrency
//! layer.
//!
//! Every synchronization primitive the collectives and overlap drivers use
//! flows through the `mt-sync` facade, which under `RUSTFLAGS="--cfg
//! mt_check"` is a schedulable, virtual-time instrumented implementation
//! (see `mt_sync::checked`). This crate supplies the *scenarios*: small
//! worlds (≤ 3 rank threads, 1–3 collectives, 1–2 chunks) that drive the
//! **actual** rendezvous, chunked-collective, rank-death-wakeup,
//! epoch-fencing, and overlap/recompute driver code, while the scheduler
//! explores every (DPOR-reduced) interleaving and checks:
//!
//! - no deadlock (some transition or armed timer always exists),
//! - no lost wakeup (scenarios marked `expect_quiescent_progress` must
//!   never need a virtual-time timeout to make progress),
//! - every timeout path terminates with `CollectiveError::Timeout` rather
//!   than hanging,
//! - cross-epoch stragglers always fence as `SpmdMismatch`,
//! - the vector-clock detector reports no happens-before race.
//!
//! The scenario registry is shared by the `check-report` binary (which
//! emits `reports/CHECK.json` for CI) and the `tests/scenarios.rs`
//! harness. The *mutation* registry maps each seeded bug from
//! `mt_sync::mutation` to the scenario that must catch it — the
//! self-validation half of the checker.
//!
//! Everything here is `#[cfg(mt_check)]`: an ordinary build sees an empty
//! crate, so tier-1 builds never pay for (or depend on) the checker.

#![forbid(unsafe_code)]

#[cfg(mt_check)]
mod scenarios;

#[cfg(mt_check)]
pub use scenarios::{
    all_scenarios, find_mutation, find_scenario, mutations, Mutation, Scenario, Tune,
};
