//! The scenario and mutation registries.
//!
//! Each scenario is a deterministic closure over **real workspace code**
//! (the `World` rendezvous, the chunked collectives, `gemm_gathered`,
//! `recompute_prefetch`) whose every schedule the model checker explores.
//! Scenario bodies double as oracles: they `assert!` the outcome required
//! in *every* interleaving, so a schedule that produces the wrong error —
//! or the wrong data — panics the scenario root and surfaces as a
//! violation carrying the offending schedule.

use mt_collectives::{CollectiveError, World};
use mt_kernels::overlap::{gemm_gathered, ChunkSlab, OverlapPlan};
use mt_kernels::{recompute_prefetch, Backend};
use mt_sync::{model, ModelOpts, ModelReport};
use mt_tensor::Tensor;
use std::time::Duration;

/// Exploration budgets, shared by every scenario in a run.
#[derive(Debug, Clone)]
pub struct Tune {
    /// Cap on DPOR executions per scenario.
    pub max_executions: u64,
    /// When nonzero, also run a capped full-DFS pass to measure the DPOR
    /// reduction ratio (reported in `CHECK.json`).
    pub full_dfs_cap: u64,
    /// Seeded bug to arm (mutation runs only).
    pub mutation: Option<String>,
}

impl Tune {
    /// CI smoke budgets: every scenario, no full-DFS ratio pass. The two
    /// overlap scenarios are capped (they exhaust at ~35k/~80k executions;
    /// the full run owns the exhaustiveness claim), everything else
    /// completes well inside the cap.
    pub fn smoke() -> Self {
        Tune { max_executions: 5_000, full_dfs_cap: 0, mutation: None }
    }

    /// Exhaustive budgets plus the full-DFS comparison pass.
    pub fn full() -> Self {
        Tune { max_executions: 500_000, full_dfs_cap: 50_000, mutation: None }
    }
}

/// One model-checked world: a name, the code under check, and the oracles
/// that must hold across all interleavings.
pub struct Scenario {
    /// Registry key (also the `CHECK.json` entry name).
    pub name: &'static str,
    /// One-line description for reports.
    pub about: &'static str,
    /// Spurious condvar wakeups the scheduler may inject per execution.
    pub spurious_budget: u32,
    /// When `true`, an execution that needed a virtual-time timeout to
    /// progress is a lost-wakeup violation.
    pub expect_quiescent_progress: bool,
    /// When `true`, the scenario is *about* the timeout path: at least one
    /// explored execution must recover through a timer, and the registry
    /// runner reports a violation if none did.
    pub requires_timer_fires: bool,
    body: fn(),
}

impl Scenario {
    /// Explores the scenario under `tune` and returns the report, with the
    /// `requires_timer_fires` oracle already applied.
    pub fn run(&self, tune: &Tune) -> ModelReport {
        let opts = ModelOpts {
            max_executions: tune.max_executions,
            spurious_budget: self.spurious_budget,
            expect_quiescent_progress: self.expect_quiescent_progress,
            full_dfs_cap: tune.full_dfs_cap,
            mutation: tune.mutation.clone(),
            ..ModelOpts::new(self.name)
        };
        let mut report = model::check(opts, self.body);
        if self.requires_timer_fires && report.violations.is_empty() && report.timer_fires == 0 {
            report.violations.push(
                "timeout path never exercised: no explored execution fired a virtual timer"
                    .to_string(),
            );
        }
        report
    }
}

/// A seeded bug (`mt_sync::mutation`) and the scenario that must catch it.
pub struct Mutation {
    /// Mutation name, as accepted by `mt_sync::mutation::arm`.
    pub name: &'static str,
    /// Scenario whose exploration must produce a violation when the
    /// mutation is armed.
    pub scenario: &'static str,
    /// What the seeded bug breaks.
    pub about: &'static str,
}

/// Every scenario in the grid, in report order.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "rendezvous_t2",
            about: "2-rank all_reduce through the real Exchange rendezvous",
            spurious_budget: 0,
            expect_quiescent_progress: true,
            requires_timer_fires: false,
            body: rendezvous_t2,
        },
        Scenario {
            name: "rendezvous_t3",
            about: "3-rank all_reduce: deposit/combine/notify under all schedules",
            spurious_budget: 0,
            expect_quiescent_progress: true,
            requires_timer_fires: false,
            body: rendezvous_t3,
        },
        Scenario {
            name: "chunked_all_gather_t2_c2",
            about: "2-rank all_gather split into 2 chunk sub-rendezvous",
            spurious_budget: 0,
            expect_quiescent_progress: true,
            requires_timer_fires: false,
            body: chunked_all_gather_t2_c2,
        },
        Scenario {
            name: "timeout_abandoned_rendezvous",
            about: "peer never arrives: every schedule ends in CollectiveError::Timeout",
            spurious_budget: 0,
            expect_quiescent_progress: false,
            requires_timer_fires: true,
            body: timeout_abandoned_rendezvous,
        },
        Scenario {
            name: "rank_death_wakes_waiter",
            about: "dead rank's mark_dead must wake the blocked peer (never the timer)",
            spurious_budget: 0,
            expect_quiescent_progress: true,
            requires_timer_fires: false,
            body: rank_death_wakes_waiter,
        },
        Scenario {
            name: "epoch_straggler_fences",
            about: "cross-epoch straggler fences as SpmdMismatch in every schedule",
            spurious_budget: 0,
            expect_quiescent_progress: true,
            requires_timer_fires: false,
            body: epoch_straggler_fences,
        },
        Scenario {
            name: "spurious_wakeup_rendezvous",
            about: "rendezvous survives an injected spurious wakeup (predicate re-check)",
            spurious_budget: 1,
            expect_quiescent_progress: true,
            requires_timer_fires: false,
            body: rendezvous_t2,
        },
        Scenario {
            name: "sendrecv_t2",
            about: "point-to-point send/recv completes without ever needing the poll timer",
            spurious_budget: 0,
            expect_quiescent_progress: true,
            requires_timer_fires: false,
            body: sendrecv_t2,
        },
        Scenario {
            name: "overlap_fetch_join",
            about: "gemm_gathered fetch/worker condvar pipeline, 2 chunks, 1 worker",
            spurious_budget: 0,
            expect_quiescent_progress: true,
            requires_timer_fires: false,
            body: overlap_fetch_join,
        },
        Scenario {
            name: "overlap_spurious_worker",
            about: "overlap worker wait loop survives an injected spurious wakeup",
            spurious_budget: 1,
            expect_quiescent_progress: true,
            requires_timer_fires: false,
            body: overlap_fetch_join,
        },
        Scenario {
            name: "recompute_prefetch_join",
            about: "recompute_prefetch helper-thread handoff and join",
            spurious_budget: 0,
            expect_quiescent_progress: true,
            requires_timer_fires: false,
            body: recompute_prefetch_join,
        },
    ]
}

/// Every seeded bug and its catching scenario.
pub fn mutations() -> Vec<Mutation> {
    vec![
        Mutation {
            name: "drop-notify",
            scenario: "rendezvous_t2",
            about: "notify_all silently dropped: waiters only recover via timeout \
                    (caught by the lost-wakeup oracle)",
        },
        Mutation {
            name: "skip-recheck",
            scenario: "spurious_wakeup_rendezvous",
            about: "wait loop trusts the wakeup without re-checking its predicate \
                    (caught when a spurious wakeup reaches the missing-result path)",
        },
        Mutation {
            name: "skip-epoch-check",
            scenario: "epoch_straggler_fences",
            about: "tag comparison ignores the formation epoch: a cross-epoch \
                    straggler silently joins the round (caught by the fencing oracle)",
        },
    ]
}

/// Looks up a scenario by name.
pub fn find_scenario(name: &str) -> Option<Scenario> {
    all_scenarios().into_iter().find(|s| s.name == name)
}

/// Looks up a mutation by name.
pub fn find_mutation(name: &str) -> Option<Mutation> {
    mutations().into_iter().find(|m| m.name == name)
}

fn rendezvous_t2() {
    let out = World::run(2, |c| c.all_reduce(&Tensor::full(&[2], (c.rank() + 1) as f32)));
    for t in &out {
        assert_eq!(t.data(), &[3.0, 3.0], "all_reduce sum must be schedule-independent");
    }
}

fn rendezvous_t3() {
    let out = World::run(3, |c| c.all_reduce(&Tensor::full(&[1], (c.rank() + 1) as f32)));
    for t in &out {
        assert_eq!(t.data(), &[6.0], "all_reduce sum must be schedule-independent");
    }
}

fn chunked_all_gather_t2_c2() {
    let out = World::run(2, |c| c.all_gather_chunked(&Tensor::full(&[2, 1], c.rank() as f32), 2));
    for t in &out {
        assert_eq!(t.data(), &[0.0, 0.0, 1.0, 1.0], "gathered shards in rank order");
    }
}

fn timeout_abandoned_rendezvous() {
    let mut world = World::new(2);
    world.set_collective_timeout(Duration::from_millis(50));
    let out = world.run_fallible(|c| {
        if c.rank() == 0 {
            match c.try_all_reduce(&Tensor::full(&[1], 1.0)) {
                Err(CollectiveError::Timeout { .. }) => Ok(()),
                other => panic!("abandoned rendezvous must end in Timeout, got {other:?}"),
            }
        } else {
            // Rank 1 never issues the collective.
            Ok(())
        }
    });
    for r in out {
        r.expect("both ranks return cleanly");
    }
}

fn rank_death_wakes_waiter() {
    let mut world = World::new(2);
    let out = world.run_fallible(|c| {
        if c.rank() == 1 {
            // Bail out of the SPMD program before the rendezvous; the
            // run_fallible wrapper marks the rank dead.
            return Err(CollectiveError::RankDead { rank: 1, dead_rank: 1 });
        }
        c.try_all_reduce(&Tensor::full(&[1], 1.0)).map(|_| ())
    });
    assert!(
        matches!(out[0], Err(CollectiveError::RankDead { dead_rank: 1, .. })),
        "waiter must observe the dead rank, got {:?}",
        out[0]
    );
}

fn epoch_straggler_fences() {
    let mut world = World::new(2);
    world.set_collective_timeout(Duration::from_secs(2));
    let straggler = world.communicator(0);
    world.set_epoch(1);
    let reformed = world.communicator(1);
    let results = mt_sync::thread::scope(|scope| {
        let handles = [
            scope.spawn(move || straggler.try_all_reduce(&Tensor::full(&[2], 1.0))),
            scope.spawn(move || reformed.try_all_reduce(&Tensor::full(&[2], 1.0))),
        ];
        handles.map(|h| h.join().expect("try_* does not panic"))
    });
    assert!(
        results.iter().any(|r| matches!(
            r,
            Err(CollectiveError::SpmdMismatch { expected, found, .. })
                if expected.epoch != found.epoch
        )),
        "cross-epoch rendezvous must fence as SpmdMismatch: {results:?}"
    );
    assert!(
        !results.iter().any(|r| matches!(r, Err(CollectiveError::Timeout { .. }))),
        "fencing must come from the tag check, not the deadline: {results:?}"
    );
}

fn sendrecv_t2() {
    let mut world = World::new(2);
    let out = world.run_fallible(|c| {
        if c.rank() == 0 {
            c.try_send(1, &Tensor::full(&[2], 5.0))?;
            Ok(0.0)
        } else {
            Ok(c.try_recv(0)?.data()[0])
        }
    });
    assert_eq!(out[0].as_ref().expect("send succeeds"), &0.0);
    assert_eq!(out[1].as_ref().expect("recv succeeds"), &5.0);
}

fn overlap_fetch_join() {
    // Two chunks of one row each, k = n = 1: two bands feeding one worker
    // (threads = 2), so the fetch loop and the worker exercise the ready
    // queue, the condvar, and the final fetch-thread-joins-compute drain.
    let plan = OverlapPlan {
        chunks: vec![
            vec![ChunkSlab { out_row0: 0, rows: 1 }],
            vec![ChunkSlab { out_row0: 1, rows: 1 }],
        ],
    };
    let b = vec![2.0f32];
    let mut out = vec![0.0f32; 2];
    let report = gemm_gathered(
        Backend::Threaded { threads: 2 },
        false,
        1,
        1,
        &plan,
        &b,
        &mut out,
        None,
        |j| vec![(j + 1) as f32],
    );
    assert_eq!(out, vec![2.0, 4.0], "overlapped GEMM must be schedule-independent");
    assert_eq!(report.bands, 2);
}

fn recompute_prefetch_join() {
    let (pre, main_out, report) = recompute_prefetch(|| 6 * 7, || "main");
    assert_eq!(pre, 42);
    assert_eq!(main_out, "main");
    assert!(report.exposed_us <= report.recompute_us, "exposure is a portion of the total");
}
