//! check-report: run the model-checking scenario grid and emit
//! `reports/CHECK.json`.
//!
//! Requires the checked personality (`RUSTFLAGS="--cfg mt_check"`); a real
//! build prints instructions and exits 2 so a mis-wired CI step fails
//! loudly instead of green-washing.
//!
//! Modes:
//!
//! - (default) — exhaustive budgets plus a capped full-DFS pass per
//!   scenario for the DPOR reduction ratio. Exit 0 iff every scenario is
//!   clean **and** complete.
//! - `--smoke` — CI budgets: every scenario, no full-DFS pass. Exit 0 iff
//!   every scenario is clean.
//! - `--mutate <name>` — arm one seeded bug and run its catching scenario.
//!   **Exit 1 means the bug was caught** (the CI mutation loop asserts
//!   exactly this); exit 0 means the checker missed it.
//! - `--mutations` — list seeded bugs and their catching scenarios.
//! - `--out <path>` — report path (default `reports/CHECK.json`).

#[cfg(not(mt_check))]
fn main() {
    eprintln!(
        "check-report: built without the model checker; rebuild with \
         RUSTFLAGS=\"--cfg mt_check\" (see README \"Model checking\")"
    );
    std::process::exit(2);
}

#[cfg(mt_check)]
fn main() {
    std::process::exit(checked::run());
}

#[cfg(mt_check)]
mod checked {
    use mt_check::{all_scenarios, find_mutation, find_scenario, mutations, Tune};
    use mt_sync::ModelReport;
    use serde_json::{json, Value};

    pub fn run() -> i32 {
        let mut args = std::env::args().skip(1);
        let mut smoke = false;
        let mut mutate: Option<String> = None;
        let mut out_path = String::from("reports/CHECK.json");
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => smoke = true,
                "--mutate" => match args.next() {
                    Some(name) => mutate = Some(name),
                    None => return usage("--mutate requires a mutation name"),
                },
                "--mutations" => {
                    for m in mutations() {
                        println!("{}\t{}\t{}", m.name, m.scenario, m.about);
                    }
                    return 0;
                }
                "--out" => match args.next() {
                    Some(p) => out_path = p,
                    None => return usage("--out requires a path"),
                },
                other => return usage(&format!("unknown argument {other:?}")),
            }
        }
        match mutate {
            Some(name) => run_mutation(&name, smoke),
            None => run_grid(smoke, &out_path),
        }
    }

    fn usage(err: &str) -> i32 {
        eprintln!("check-report: {err}");
        eprintln!("usage: check-report [--smoke] [--mutate <name>] [--mutations] [--out <path>]");
        2
    }

    /// Runs one seeded bug through its catching scenario. Exit 1 = caught.
    fn run_mutation(name: &str, smoke: bool) -> i32 {
        let Some(m) = find_mutation(name) else {
            return usage(&format!("unknown mutation {name:?} (see --mutations)"));
        };
        let scenario = find_scenario(m.scenario).expect("mutation points at a known scenario");
        let mut tune = if smoke { Tune::smoke() } else { Tune::full() };
        tune.full_dfs_cap = 0; // the ratio pass is meaningless under a seeded bug
        tune.mutation = Some(m.name.to_string());
        println!("mutation {}: {}", m.name, m.about);
        let report = scenario.run(&tune);
        println!(
            "  scenario {}: {} executions, {} violation(s)",
            report.name,
            report.executions,
            report.violations.len()
        );
        for v in &report.violations {
            println!("  caught: {v}");
        }
        if report.violations.is_empty() {
            eprintln!("mutation {}: MISSED — the checker found nothing", m.name);
            0
        } else {
            1
        }
    }

    fn run_grid(smoke: bool, out_path: &str) -> i32 {
        let tune = if smoke { Tune::smoke() } else { Tune::full() };
        let mut entries = Vec::new();
        let mut total_execs = 0u64;
        let mut total_violations = 0usize;
        let mut incomplete = 0usize;
        for scenario in all_scenarios() {
            let report = scenario.run(&tune);
            total_execs += report.executions;
            total_violations += report.violations.len();
            incomplete += usize::from(!report.complete);
            print_line(&report);
            entries.push(entry(scenario.about, &report));
        }
        // The vendored json! takes plain expressions as values; nested
        // object literals are hoisted.
        let totals = json!({
            "scenarios": all_scenarios().len(),
            "executions": total_execs,
            "violations": total_violations,
            "incomplete": incomplete,
        });
        let doc = json!({
            "schema_version": 1,
            "mode": if smoke { "smoke" } else { "full" },
            "scenarios": entries,
            "totals": totals,
        });
        if let Some(dir) = std::path::Path::new(out_path).parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("check-report: creating {}: {e}", dir.display());
                return 2;
            }
        }
        let text = serde_json::to_string_pretty(&doc).expect("report serializes");
        if let Err(e) = std::fs::write(out_path, text + "\n") {
            eprintln!("check-report: writing {out_path}: {e}");
            return 2;
        }
        println!(
            "wrote {out_path}: {} scenario(s), {} execution(s), {} violation(s)",
            all_scenarios().len(),
            total_execs,
            total_violations
        );
        // Smoke tolerates capped (incomplete) exploration; the full run is
        // the exhaustiveness claim and must finish every scenario.
        if total_violations > 0 || (!smoke && incomplete > 0) {
            1
        } else {
            0
        }
    }

    fn print_line(r: &ModelReport) {
        let ratio = match r.full_executions {
            Some(full) if r.executions > 0 => {
                format!(
                    ", dpor {:.1}x{}",
                    full as f64 / r.executions as f64,
                    if r.full_complete { "" } else { " (lower bound)" }
                )
            }
            _ => String::new(),
        };
        println!(
            "{}: {} executions ({} transitions, depth {}){}{}{}",
            r.name,
            r.executions,
            r.transitions,
            r.max_depth,
            if r.complete { "" } else { " [capped]" },
            ratio,
            if r.violations.is_empty() { "" } else { " VIOLATIONS" },
        );
        for v in &r.violations {
            println!("  violation: {v}");
        }
    }

    fn entry(about: &str, r: &ModelReport) -> Value {
        json!({
            "name": r.name,
            "about": about,
            "executions": r.executions,
            "transitions": r.transitions,
            "max_depth": r.max_depth,
            "timer_fires": r.timer_fires,
            "violations": r.violations,
            "complete": r.complete,
            "full_executions": r.full_executions,
            "full_complete": r.full_complete,
            "dpor_reduction": r.full_executions.map(|f| {
                if r.executions > 0 { f as f64 / r.executions as f64 } else { 0.0 }
            }),
        })
    }
}
