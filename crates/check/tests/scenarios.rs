//! Harness around the scenario/mutation registries. Only meaningful under
//! `RUSTFLAGS="--cfg mt_check"` (the CI model-check job); an ordinary
//! `cargo test` sees an empty binary.
//!
//! The heavyweight exhaustive exploration lives in the `check-report`
//! binary; these tests pin the registry invariants and prove, at smoke
//! budgets, that the representative scenarios stay clean and every seeded
//! bug is caught.

#![cfg(mt_check)]

use mt_check::{all_scenarios, find_mutation, find_scenario, mutations, Tune};

#[test]
fn registry_names_are_unique_and_mutations_resolve() {
    let mut names: Vec<&str> = all_scenarios().iter().map(|s| s.name).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(names.len(), before, "duplicate scenario names");
    for m in mutations() {
        assert!(
            find_scenario(m.scenario).is_some(),
            "mutation {} points at unknown scenario {}",
            m.name,
            m.scenario
        );
        assert!(
            mt_sync::mutation::ALL.contains(&m.name),
            "mutation {} is not registered in mt_sync::mutation::ALL",
            m.name
        );
    }
    for name in mt_sync::mutation::ALL {
        assert!(
            find_mutation(name).is_some(),
            "seeded bug {name} has no catching scenario (self-validation gap)"
        );
    }
}

#[test]
fn rendezvous_t2_is_clean_and_exhausted() {
    let report = find_scenario("rendezvous_t2").unwrap().run(&Tune::smoke());
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(report.executions >= 2, "symmetric ranks must branch: {}", report.executions);
}

#[test]
fn timeout_scenario_terminates_through_the_timer() {
    let report = find_scenario("timeout_abandoned_rendezvous").unwrap().run(&Tune::smoke());
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert!(report.timer_fires > 0, "the deadline is the only way out");
}

#[test]
fn epoch_straggler_is_clean_and_exhausted() {
    let report = find_scenario("epoch_straggler_fences").unwrap().run(&Tune::smoke());
    assert!(report.ok(), "violations: {:?}", report.violations);
}

#[test]
fn dpor_beats_full_dfs_on_the_rendezvous() {
    let mut tune = Tune::smoke();
    tune.full_dfs_cap = 50_000;
    let report = find_scenario("rendezvous_t2").unwrap().run(&tune);
    assert!(report.ok(), "violations: {:?}", report.violations);
    let full = report.full_executions.expect("ratio pass ran");
    assert!(
        report.full_complete && full > report.executions,
        "DPOR ({}) must prune the unreduced space ({full})",
        report.executions
    );
}

#[test]
fn every_seeded_bug_is_caught() {
    for m in mutations() {
        let scenario = find_scenario(m.scenario).unwrap();
        let mut tune = Tune::smoke();
        tune.mutation = Some(m.name.to_string());
        let report = scenario.run(&tune);
        assert!(
            !report.violations.is_empty(),
            "seeded bug {} survived {} executions of {} undetected",
            m.name,
            report.executions,
            m.scenario
        );
    }
}
