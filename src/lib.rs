//! Umbrella crate for the reproduction of *"Reducing Activation Recomputation
//! in Large Transformer Models"* (Korthikanti et al., MLSys 2023).
//!
//! This crate re-exports every sub-crate of the workspace so that examples and
//! integration tests can reach the whole system through a single dependency.
//! The interesting code lives in the `crates/` directory:
//!
//! * [`tensor`] — CPU tensor library with forward/backward transformer ops.
//! * [`collectives`] — thread-rank process groups (all-reduce, all-gather,
//!   reduce-scatter, …) plus an analytical communication cost model.
//! * [`model`] — the transformer itself: serial reference, tensor-parallel,
//!   and tensor+sequence-parallel layers with `none`/`full`/`selective`
//!   activation-recomputation policies.
//! * [`memory`] — the paper's activation-memory model (Equations 1–6,
//!   Table 2) plus parameter/optimizer state accounting.
//! * [`flops`] — model/hardware FLOPs and MFU/HFU (Appendix A).
//! * [`perf`] — calibrated per-layer timing model (Table 4, Figure 8).
//! * [`pipeline`] — 1F1B / interleaved pipeline schedule simulator
//!   (Table 5, Figure 9, Appendix C).
//! * [`core`] — top-level planner/estimator API and the Table 3 model zoo.
//! * [`trace`] — structured tracing, metrics registry, and Chrome-trace
//!   export across all of the above.

pub use mt_collectives as collectives;
pub use mt_core as core;
pub use mt_data as data;
pub use mt_flops as flops;
pub use mt_memory as memory;
pub use mt_model as model;
pub use mt_perf as perf;
pub use mt_pipeline as pipeline;
pub use mt_tensor as tensor;
pub use mt_trace as trace;
