//! Quickstart: estimate memory and iteration time for a paper-scale model
//! and let the planner pick the right recomputation strategy.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use megatron_repro::core::{Estimator, ModelZoo, TrainingPlanner};
use megatron_repro::memory::{Strategy, A100_80GB_BYTES};

fn main() {
    // The paper's 175B GPT-3 configuration (Table 3): t=8, p=8, m=3, 64 GPUs.
    let model = ModelZoo::gpt3_175b();
    let est = Estimator::for_paper_model(&model);

    println!(
        "model: {} ({:.0}B parameters, {} GPUs)\n",
        model.name,
        model.shape.parameters() as f64 / 1e9,
        model.gpus()
    );

    // --- memory: the Figure 1 / Figure 7 story -----------------------------
    for strategy in [
        Strategy::tp(),
        Strategy::tp_sp(),
        Strategy::tp_selective(),
        Strategy::tp_sp_selective(),
        Strategy::full_recompute(),
    ] {
        let mem = est.memory_report(strategy);
        println!(
            "{:<55} {:>6.1} GB activations ({:>5.1}% of baseline){}",
            strategy.label(),
            mem.activation_bytes / 1e9,
            mem.percent_of_tp_baseline,
            if mem.fits_a100_80gb { "" } else { "  ** exceeds 80 GB **" }
        );
    }

    // --- time: the Table 5 story -------------------------------------------
    let full = est.time_report(Strategy::full_recompute());
    let present = est.time_report(Strategy::tp_sp_selective());
    println!(
        "\nfull recomputation : {:.2} s/iteration (MFU {:.1}%)",
        full.iteration_s,
        100.0 * full.mfu
    );
    println!(
        "present work       : {:.2} s/iteration (MFU {:.1}%, HFU {:.1}%)",
        present.iteration_s,
        100.0 * present.mfu,
        100.0 * present.hfu
    );
    println!(
        "throughput increase: {:.1}% (paper reports 29-32%)",
        100.0 * (full.iteration_s / present.iteration_s - 1.0)
    );

    // --- the planner picks it automatically --------------------------------
    let plan = TrainingPlanner::new(est, A100_80GB_BYTES).plan();
    match plan.strategy {
        Some(s) => println!(
            "\nplanner choice at 80 GB/GPU: {} ({:.2} s/iteration, {:.1} GB peak)",
            s.label(),
            plan.iteration_s.unwrap(),
            plan.peak_bytes.unwrap() / 1e9
        ),
        None => println!("\nno strategy fits the budget"),
    }
}
