//! Trains a tiny GPT for real — serially, tensor-parallel, and
//! tensor+sequence-parallel (on thread-simulated ranks) — under each
//! activation-recomputation policy, and shows that:
//!
//! 1. every mode/policy follows the *same* loss curve (recomputation and
//!    parallelism are numerically invisible),
//! 2. the activation ledger shrinks exactly as Table 2 predicts,
//! 3. TP+SP moves the same wire bytes as TP.
//!
//! ```text
//! cargo run --example train_tiny_tp
//! ```

use megatron_repro::collectives::{CollectiveKind, World};
use megatron_repro::memory::Recompute;
use megatron_repro::model::gpt::Gpt;
use megatron_repro::model::optim::Adam;
use megatron_repro::model::{ActivationLedger, ExecMode, TransformerConfig};
use megatron_repro::tensor::rng::SplitMix64;

const STEPS: usize = 20;
const SEED: u64 = 1234;

fn config() -> TransformerConfig {
    TransformerConfig {
        hidden: 32,
        heads: 4,
        seq: 16,
        micro_batch: 2,
        layers: 2,
        vocab: 64,
        dropout_p: 0.1,
        causal: true,
    }
}

fn data(cfg: &TransformerConfig) -> (Vec<usize>, Vec<usize>) {
    // A repeating-token task the model can actually learn: predict the
    // previous token.
    let mut rng = SplitMix64::new(99);
    let n = cfg.tokens();
    let tokens: Vec<usize> = (0..n).map(|_| (rng.next_u64() as usize) % cfg.vocab).collect();
    let mut targets = tokens.clone();
    targets.rotate_left(cfg.micro_batch); // next position in s-major layout
    (tokens, targets)
}

/// Trains serially and returns the loss curve.
fn train_serial(policy: Recompute) -> Vec<f32> {
    let cfg = config();
    let (tokens, targets) = data(&cfg);
    let mut gpt = Gpt::init(cfg, policy, SEED);
    let mut adam = Adam::new(2e-3);
    let mut losses = Vec::with_capacity(STEPS);
    for step in 0..STEPS {
        let mut ledger = ActivationLedger::new();
        let (loss, grads) =
            gpt.loss_and_grads(&tokens, &targets, step as u64, ExecMode::Serial, &mut ledger);
        adam.update(gpt.param_tensors_mut(), &grads.tensors());
        losses.push(loss);
    }
    losses
}

/// Trains on `t` thread-ranks and returns (loss curve, rank-0 ledger bytes,
/// rank-0 wire bytes).
fn train_parallel(t: usize, sp: bool, policy: Recompute) -> (Vec<f32>, u64, u64) {
    let cfg = config();
    let (tokens, targets) = data(&cfg);
    let template = Gpt::init(cfg, policy, SEED);
    let results = World::run(t, |comm| {
        let mut gpt = template.shard(t, comm.rank(), policy);
        let mut adam = Adam::new(2e-3);
        let mut losses = Vec::with_capacity(STEPS);
        let mut ledger_bytes = 0;
        for step in 0..STEPS {
            let mode = if sp {
                ExecMode::TensorSequenceParallel(&comm)
            } else {
                ExecMode::TensorParallel(&comm)
            };
            let mut ledger = ActivationLedger::new();
            let (loss, grads) =
                gpt.loss_and_grads(&tokens, &targets, step as u64, mode, &mut ledger);
            adam.update(gpt.param_tensors_mut(), &grads.tensors());
            losses.push(loss);
            ledger_bytes = ledger.paper_bytes();
        }
        let stats = comm.stats();
        let wire = stats.kind(CollectiveKind::AllReduce).wire_bytes
            + stats.kind(CollectiveKind::AllGather).wire_bytes
            + stats.kind(CollectiveKind::ReduceScatter).wire_bytes;
        (losses, ledger_bytes, wire)
    });
    results.into_iter().next().expect("rank 0 result")
}

fn main() {
    println!("tiny GPT: h=32, a=4, s=16, b=2, L=2, v=64, dropout 0.1\n");

    // 1. Loss-curve equivalence across modes and policies.
    let serial = train_serial(Recompute::None);
    println!(
        "serial loss curve: {:.4} -> {:.4} over {STEPS} Adam steps",
        serial[0],
        serial[STEPS - 1]
    );
    for (label, t, sp, policy) in [
        ("serial + selective recompute", 1, false, Recompute::Selective),
        ("serial + full recompute", 1, false, Recompute::Full),
        ("tensor parallel t=4", 4, false, Recompute::Selective),
        ("tensor + sequence parallel t=4", 4, true, Recompute::Selective),
    ] {
        let losses = if t == 1 { train_serial(policy) } else { train_parallel(t, sp, policy).0 };
        let max_dev =
            serial.iter().zip(&losses).map(|(a, b)| (a - b).abs()).fold(0.0_f32, f32::max);
        println!(
            "{label:<32} final loss {:.4}  (max deviation from serial {max_dev:.2e})",
            losses[STEPS - 1]
        );
        assert!(max_dev < 1e-2, "loss curves must agree");
    }

    // 2. Activation ledger vs Table 2.
    println!("\nper-iteration activation bytes stored on rank 0 (t=4):");
    for (label, sp, policy) in [
        ("tensor parallel, store-all", false, Recompute::None),
        ("tensor parallel, selective", false, Recompute::Selective),
        ("tp + sequence parallel, selective", true, Recompute::Selective),
        ("full recompute", false, Recompute::Full),
    ] {
        let (_, bytes, _) = train_parallel(4, sp, policy);
        println!("  {label:<36} {bytes:>8} bytes");
    }

    // 3. Communication volume identity (Section 4.2.2).
    let (_, _, tp_wire) = train_parallel(4, false, Recompute::None);
    let (_, _, sp_wire) = train_parallel(4, true, Recompute::None);
    println!("\nwire bytes per rank over {STEPS} iterations:");
    println!("  tensor parallel           : {tp_wire}");
    println!("  tensor + sequence parallel: {sp_wire}");
    println!("  (the per-layer f/f̄ ↔ g/ḡ conversion volumes are identical — verified in the test");
    println!("   suite; TP+SP's extra volume here is the overlapped backward re-gathers, the");
    println!("   replicated-parameter gradient syncs, and this tiny model's head all-gather)");
}
