//! Trains a tiny GPT with **real pipeline parallelism**: the 1F1B schedule
//! of Section 4.2.3 executing on thread-simulated stages, combined with
//! tensor parallelism inside each stage, and compared against the serial
//! reference.
//!
//! ```text
//! cargo run --example pipeline_train
//! ```

use megatron_repro::collectives::run_grid;
use megatron_repro::memory::Recompute;
use megatron_repro::model::gpt::Gpt;
use megatron_repro::model::pipeline_exec::{run_1f1b_iteration, StageModel};
use megatron_repro::model::{ActivationLedger, ExecMode, TransformerConfig};
use megatron_repro::tensor::rng::SplitMix64;

const SEED: u64 = 31337;
const N_MICRO: usize = 4;

fn config() -> TransformerConfig {
    TransformerConfig {
        hidden: 32,
        heads: 4,
        seq: 8,
        micro_batch: 1,
        layers: 4,
        vocab: 48,
        dropout_p: 0.1,
        causal: true,
    }
}

fn main() {
    let cfg = config();
    let mut rng = SplitMix64::new(123);
    let data: Vec<(Vec<usize>, Vec<usize>)> = (0..N_MICRO)
        .map(|_| {
            let toks: Vec<usize> =
                (0..cfg.tokens()).map(|_| (rng.next_u64() as usize) % cfg.vocab).collect();
            let tgts: Vec<usize> =
                (0..cfg.tokens()).map(|_| (rng.next_u64() as usize) % cfg.vocab).collect();
            (toks, tgts)
        })
        .collect();

    println!("tiny GPT (L=4) across pipeline stages, {N_MICRO} microbatches per iteration\n");

    // Serial reference: accumulate over the microbatches.
    let gpt = Gpt::init(cfg, Recompute::None, SEED);
    let mut serial_loss = 0.0;
    for (m, (tokens, targets)) in data.iter().enumerate() {
        let mut ledger = ActivationLedger::new();
        let (loss, _) =
            gpt.loss_and_grads(tokens, targets, m as u64, ExecMode::Serial, &mut ledger);
        serial_loss += loss / N_MICRO as f32;
    }
    println!("serial reference mean loss: {serial_loss:.5}\n");

    for (label, tp, pp, sp, policy) in [
        ("pp=2", 1usize, 2usize, false, Recompute::None),
        ("pp=4", 1, 4, false, Recompute::None),
        ("pp=4 + selective recompute", 1, 4, false, Recompute::Selective),
        ("tp=2 × pp=2 + sequence parallel", 2, 2, true, Recompute::Selective),
    ] {
        let results = run_grid(tp, pp, |g| {
            let model = StageModel::from_gpt(&gpt, pp, g.stage, tp, g.tp_rank, policy);
            let out = run_1f1b_iteration(&model, &g, sp, &data, 0);
            (g.stage, out.mean_loss, out.peak_live_states, out.per_micro_activation_bytes)
        });
        let loss = results[0].1;
        let peaks: Vec<usize> = {
            let mut per_stage = vec![0usize; pp];
            for (stage, _, peak, _) in &results {
                per_stage[*stage] = *peak;
            }
            per_stage
        };
        println!("{label:<34} loss {loss:.5} (Δserial {:+.1e})", loss - serial_loss);
        println!(
            "   peak in-flight microbatch states per stage: {peaks:?}  (paper: min(p − stage, n))"
        );
        println!("   activation bytes per microbatch on rank 0: {}\n", results[0].3);
    }
    println!("All configurations reproduce the serial loss — pipeline, tensor, and sequence");
    println!("parallelism plus recomputation change *where* bytes live and *when* work runs,");
    println!("never the mathematics. That is the paper's correctness premise, executed.");
}
