//! Explores pipeline schedules with the discrete-event simulator: how the
//! bubble shrinks with more microbatches and interleaving, and what
//! Appendix C microbatch-level storage buys at different memory budgets.
//!
//! ```text
//! cargo run --example schedule_explorer
//! ```

use megatron_repro::core::{Estimator, ModelZoo, TrainingPlanner};
use megatron_repro::memory::Strategy;
use megatron_repro::pipeline::{PipelineSim, StageCosts};

fn main() {
    // --- bubble anatomy on a uniform pipeline -------------------------------
    println!("pipeline bubble vs microbatch count (p=8, f=1 ms, b=2 ms):");
    let costs = StageCosts::new(1.0, 2.0, 0.0);
    for n in [8u64, 16, 32, 64, 128] {
        let sim = PipelineSim::uniform(costs, 8, n, 0.05);
        let r = sim.simulate_1f1b(None);
        println!(
            "  n={n:<4} makespan {:>8.1} ms   bubble {:>5.1}%   interleaved m=3 {:>8.1} ms",
            r.makespan_ms,
            100.0 * r.bubble_fraction(),
            sim.interleaved_ms(3)
        );
    }

    // --- recompute cost inside the schedule ----------------------------------
    println!("\nrecompute inside the pipeline (p=8, n=64):");
    for (label, recompute) in
        [("no recompute", 0.0), ("selective (~5%)", 0.15), ("full (~100%)", 1.0)]
    {
        let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, recompute), 8, 64, 0.05);
        let r = sim.simulate_1f1b(None);
        println!("  {label:<18} makespan {:>8.1} ms", r.makespan_ms);
    }

    // --- Appendix C sweep on the 530B configuration --------------------------
    println!("\nAppendix C on the 530B model — storage budget vs iteration time:");
    let model = ModelZoo::mtnlg_530b();
    let est = Estimator::for_paper_model(&model);
    let strategy = Strategy::tp_sp_selective();
    let base_s = est.time_report(strategy).iteration_s;
    println!("  baseline (selective + SP)            : {base_s:.2} s/iteration");
    for budget_gb in [70.0, 80.0, 100.0, 120.0] {
        let planner = TrainingPlanner::new(est, budget_gb * 1e9);
        let budgets = planner.appendix_c_budgets(strategy);
        let stored: u64 = budgets.iter().sum();
        let with_s = est.iteration_ms_with_storage(strategy, &budgets) / 1e3;
        println!(
            "  {budget_gb:>5.0} GB budget: {stored:>5} stored microbatch-slots -> {with_s:.2} s/iteration ({:+.2}%)",
            100.0 * (with_s / base_s - 1.0)
        );
    }

    // --- peak in-flight microbatches (the Figure 9 driver) -------------------
    println!("\npeak in-flight microbatches per stage (p=8, n=64) — the Appendix B pattern:");
    let sim = PipelineSim::uniform(costs, 8, 64, 0.05);
    let r = sim.simulate_1f1b(None);
    println!("  {:?}  (= p - stage, as Equation 5 assumes)", r.peak_in_flight);

    // --- the Figure 10 diagram, drawn from an executed trace -----------------
    println!("\nFigure 10, regenerated (p=4, n=8, Appendix C budget 1 per stage):");
    let sim = PipelineSim::uniform(StageCosts::new(1.0, 2.0, 0.6), 4, 8, 0.05);
    let (_, events) = sim.trace_1f1b(Some(&[1, 1, 1, 1]));
    println!("{}", megatron_repro::pipeline::render_schedule(&events));
    println!("time-scaled view:");
    println!("{}", megatron_repro::pipeline::render_timeline(&events, 100));
}
