//! Trains a character-level language model on real text with the paper's
//! full recipe — tensor + sequence parallelism + selective activation
//! recomputation on thread-simulated ranks — then *generates* from it,
//! showing the machinery trains a model that actually learns.
//!
//! ```text
//! cargo run --release --example char_lm
//! ```

use megatron_repro::collectives::World;
use megatron_repro::data::{CharVocab, MicrobatchSampler, PackedDataset};
use megatron_repro::memory::Recompute;
use megatron_repro::model::gpt::Gpt;
use megatron_repro::model::optim::AdamW;
use megatron_repro::model::{ActivationLedger, ExecMode, TransformerConfig};

/// A tiny corpus with strong local structure a small model can pick up.
const CORPUS: &str = "the quick brown fox jumps over the lazy dog. \
the quick brown fox jumps over the lazy dog. \
she sells sea shells by the sea shore. \
she sells sea shells by the sea shore. \
pack my box with five dozen liquor jugs. \
pack my box with five dozen liquor jugs. \
how vexingly quick daft zebras jump. \
how vexingly quick daft zebras jump. ";

const STEPS: usize = 400;
const TP: usize = 2;

fn main() {
    let vocab = CharVocab::from_corpus(CORPUS);
    let tokens = vocab.encode(CORPUS);
    let cfg = TransformerConfig {
        hidden: 48,
        heads: 4,
        seq: 24,
        micro_batch: 4,
        layers: 2,
        vocab: vocab.len(),
        dropout_p: 0.05,
        causal: true,
    };
    let dataset = PackedDataset::new(tokens, cfg.seq);
    println!(
        "corpus: {} chars, vocab {} | model: h={}, L={}, s={}, b={} | t={TP} (TP+SP+selective)\n",
        CORPUS.len(),
        vocab.len(),
        cfg.hidden,
        cfg.layers,
        cfg.seq,
        cfg.micro_batch
    );

    let template = Gpt::init(cfg, Recompute::Selective, 2718);
    // Train on TP ranks; every rank ends with identical weights, so rank 0
    // returns the trained model.
    let trained: Vec<Gpt> = World::run(TP, |comm| {
        let mut gpt = template.shard(TP, comm.rank(), Recompute::Selective);
        let mut opt = AdamW::new(3e-3, 0.01);
        let mut sampler = MicrobatchSampler::new(&dataset, cfg.micro_batch, 7);
        for step in 0..STEPS {
            let indices = sampler.next_indices();
            let (toks, tgts) = dataset.microbatch(&indices);
            let mode = ExecMode::TensorSequenceParallel(&comm);
            let mut ledger = ActivationLedger::new();
            let (loss, grads) = gpt.loss_and_grads(&toks, &tgts, step as u64, mode, &mut ledger);
            opt.update(gpt.param_tensors_mut(), &grads.tensors());
            if comm.rank() == 0 && (step % 30 == 0 || step == STEPS - 1) {
                println!("step {step:>4}: loss {loss:.4}");
            }
        }
        gpt
    });

    // Reassemble the full model from the shards for generation (layer
    // weights differ per rank; unshard them through a checkpoint).
    let full = {
        let shards: Vec<_> = trained.iter().map(|g| g.to_checkpoint()).collect();
        let mut ckpt = shards[0].clone();
        ckpt.cfg.micro_batch = 1;
        for (i, lw) in ckpt.layer_weights.iter_mut().enumerate() {
            let parts: Vec<_> = shards.iter().map(|s| s.layer_weights[i].clone()).collect();
            *lw = megatron_repro::model::weights::LayerWeights::unshard(&parts);
        }
        Gpt::from_checkpoint(ckpt)
    };

    let prompt = "the quick";
    let out = full.generate(&vocab.encode(prompt), 40);
    println!("\nprompt:    {prompt:?}");
    println!("generated: {:?}", vocab.decode(&out));
}
