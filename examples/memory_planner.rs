//! Memory planner: sweep every strategy for a Table 3 model under a memory
//! budget, show the per-pipeline-rank profile (Figure 9), and compute
//! Appendix C microbatch storage budgets.
//!
//! ```text
//! cargo run --example memory_planner -- [22B|175B|530B|1T] [budget-GB]
//! ```

use megatron_repro::core::{Estimator, ModelZoo, TrainingPlanner};
use megatron_repro::memory::Strategy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("530B");
    let budget_gb: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(80.0);

    let model = ModelZoo::all().into_iter().find(|m| m.name.contains(name)).unwrap_or_else(|| {
        eprintln!("unknown model {name:?}; choose 22B, 175B, 530B, or 1T");
        std::process::exit(1);
    });
    let est = Estimator::for_paper_model(&model);
    let planner = TrainingPlanner::new(est, budget_gb * 1e9);

    println!("== {} under a {budget_gb:.0} GB/GPU budget ==\n", model.name);
    let outcome = planner.plan();
    println!("{:<55} {:>10} {:>10} {:>6}", "strategy", "iter s", "peak GB", "fits");
    for (s, iter_s, bytes, fits) in &outcome.candidates {
        println!(
            "{:<55} {:>10.2} {:>10.1} {:>6}",
            s.label(),
            iter_s,
            bytes / 1e9,
            if *fits { "yes" } else { "no" }
        );
    }
    match outcome.strategy {
        Some(s) => println!("\n-> planner picks: {}", s.label()),
        None => println!("\n-> nothing fits; increase parallelism or the budget"),
    }

    if model.parallel.pipeline > 1 {
        let strategy = outcome.strategy.unwrap_or(Strategy::tp_sp_selective());
        println!("\nper-pipeline-rank activation memory (Appendix B), {}:", strategy.label());
        let with = est.pipeline_memory_profile(strategy, true);
        let without = est.pipeline_memory_profile(strategy, false);
        for (rank, (a, b)) in with.iter().zip(&without).enumerate().take(8) {
            println!(
                "  rank {rank:>2}: {:>6.2} GB (without dealloc: {:>6.2} GB)",
                a / 1e9,
                b / 1e9
            );
        }
        if with.len() > 8 {
            println!("  … ({} more ranks, linearly decreasing)", with.len() - 8);
        }

        let budgets = planner.appendix_c_budgets(strategy);
        println!(
            "\nAppendix C storage budgets (microbatches stored in full per stage):\n  first 8 stages: {:?}  last stage: {}",
            &budgets[..8.min(budgets.len())],
            budgets.last().unwrap()
        );
        let with_storage_s = est.iteration_ms_with_storage(strategy, &budgets) / 1e3;
        let base_s = est.time_report(strategy).iteration_s;
        println!(
            "  iteration: {base_s:.2} s -> {with_storage_s:.2} s with microbatch-level storage"
        );
    }
}
