//! The Section 6.3 story, executed: data-parallel replicas (each a
//! tensor-parallel group) training with a gradient all-reduce, then the same
//! run with mini ZeRO-1 optimizer-state sharding — identical training
//! trajectories, very different optimizer-state footprints.
//!
//! ```text
//! cargo run --example data_parallel_zero
//! ```

use megatron_repro::collectives::{run_grid3, World};
use megatron_repro::memory::Recompute;
use megatron_repro::model::data_parallel::all_reduce_gpt_grads;
use megatron_repro::model::gpt::Gpt;
use megatron_repro::model::optim::Adam;
use megatron_repro::model::zero::ZeroAdam;
use megatron_repro::model::{ActivationLedger, ExecMode, TransformerConfig};
use megatron_repro::tensor::rng::SplitMix64;

const STEPS: usize = 10;
const SEED: u64 = 555;

fn cfg() -> TransformerConfig {
    TransformerConfig {
        hidden: 32,
        heads: 4,
        seq: 8,
        micro_batch: 2,
        layers: 2,
        vocab: 48,
        dropout_p: 0.0,
        causal: true,
    }
}

fn main() {
    let c = cfg();
    let mut rng = SplitMix64::new(12);
    // Two replicas, each with its own microbatch stream.
    let replica_data: Vec<(Vec<usize>, Vec<usize>)> = (0..2)
        .map(|_| {
            (
                (0..c.tokens()).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
                (0..c.tokens()).map(|_| (rng.next_u64() as usize) % c.vocab).collect(),
            )
        })
        .collect();

    println!("dp=2 × tp=2 grid (4 ranks), {STEPS} steps, plain DP all-reduce:\n");
    let dp_losses = run_grid3(2, 2, 1, |g| {
        let mut gpt = Gpt::init(c, Recompute::Selective, SEED).shard(
            2,
            g.replica.tp_rank,
            Recompute::Selective,
        );
        let mut adam = Adam::new(2e-3);
        let mut losses = Vec::new();
        for step in 0..STEPS {
            let (tokens, targets) = &replica_data[g.dp_rank];
            let mut ledger = ActivationLedger::new();
            let (loss, mut grads) = gpt.loss_and_grads(
                tokens,
                targets,
                (g.dp_rank * STEPS + step) as u64,
                ExecMode::TensorParallel(&g.replica.tp),
                &mut ledger,
            );
            all_reduce_gpt_grads(&g.dp, &mut grads);
            adam.update(gpt.param_tensors_mut(), &grads.tensors());
            losses.push(loss);
        }
        (g.dp_rank, g.replica.tp_rank, losses)
    });
    for (dp, tp, losses) in dp_losses.iter().filter(|(_, tp, _)| *tp == 0) {
        println!(
            "  replica {dp} (tp_rank {tp}): loss {:.4} -> {:.4}",
            losses[0],
            losses[STEPS - 1]
        );
    }

    println!("\nsame run with ZeRO-1 optimizer-state sharding across dp=2 (tp=1 for clarity):\n");
    let zero_out = World::run(2, |comm| {
        let mut gpt = Gpt::init(c, Recompute::Selective, SEED);
        let elements: Vec<usize> = gpt.param_tensors_mut().iter().map(|t| t.numel()).collect();
        let total: usize = elements.iter().sum();
        let mut zero = ZeroAdam::new(2e-3, &elements, 2, comm.rank());
        let mut last = 0.0;
        for step in 0..STEPS {
            let (tokens, targets) = &replica_data[comm.rank()];
            let mut ledger = ActivationLedger::new();
            let (loss, grads) = gpt.loss_and_grads(
                tokens,
                targets,
                (comm.rank() * STEPS + step) as u64,
                ExecMode::Serial,
                &mut ledger,
            );
            zero.step(&comm, gpt.param_tensors_mut(), &grads.tensors());
            last = loss;
        }
        (comm.rank(), last, zero.owned_state_elements(), total)
    });
    for (rank, loss, owned, total) in &zero_out {
        println!(
            "  replica {rank}: final loss {loss:.4}, optimizer state {owned}/{total} elements ({:.0}%)",
            100.0 * *owned as f64 / *total as f64
        );
    }
    println!("\nZeRO-1 halves each replica's optimizer-state memory (12 B/param -> 6 B/param at");
    println!("dp=2) while following the exact replicated-Adam trajectory — the Related Work");
    println!("data-parallel technique the paper positions its model-parallel approach against.");
}
